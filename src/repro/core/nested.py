"""Nested blockchain transactions: non-locking execution + recovery.

Section 4.2 of the paper.  A committed ACCEPT_BID parent must eventually
cause one TRANSFER-equivalent (its own output to the requester) and n-1
RETURNs of losing bids.  The *non-locking* approach commits the parent
first, then:

* at block commit, the receiver node determines the RETURN children
  (``deterRtrnTxs``) and enqueues them into a :class:`ReturnQueue`
  (Algorithm 3, Commit part);
* parallel workers drain the queue asynchronously, submitting each
  RETURN to a randomly selected validator and retrying on failure;
* a durable ``accept_tx_recovery`` collection logs the parent and every
  child's status, so a crashed receiver node re-enqueues pending RETURNs
  on recovery (crash case 2 of Section 4.2.1).

Definition 2's eventual-commit semantics: the parent is *fully* committed
only once all children are; :meth:`RecoveryLog.is_fully_committed`
exposes exactly that predicate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.builders import build_return
from repro.core.transaction import Transaction
from repro.crypto.keys import KeyPair
from repro.storage.database import Database

PENDING = "pending"
COMMITTED = "committed"


@dataclass
class ReturnJob:
    """One queued RETURN child."""

    accept_id: str
    bid_id: str
    payload: dict[str, Any]
    attempts: int = 0


class ReturnQueue:
    """FIFO task queue drained by asynchronous workers.

    The queue itself is durable in the paper's design ("all the RETURN
    transactions already persist in the queue for the execution"); we
    model durability by rebuilding it from the recovery log on restart
    (:meth:`RecoveryLog.pending_jobs`).
    """

    def __init__(self) -> None:
        self._jobs: deque[ReturnJob] = deque()
        self.stats = {"enqueued": 0, "completed": 0, "retried": 0}

    def __len__(self) -> int:
        return len(self._jobs)

    def put(self, job: ReturnJob) -> None:
        self._jobs.append(job)
        self.stats["enqueued"] += 1

    def get(self) -> ReturnJob | None:
        if not self._jobs:
            return None
        return self._jobs.popleft()

    def requeue(self, job: ReturnJob) -> None:
        job.attempts += 1
        self._jobs.append(job)
        self.stats["retried"] += 1

    def mark_done(self) -> None:
        self.stats["completed"] += 1


class RecoveryLog:
    """The ``accept_tx_recovery`` collection introduced by the paper.

    One document per ACCEPT_BID::

        {"accept_id": ..., "rfq_id": ..., "status": "pending"|"committed",
         "children": [{"bid_id": ..., "return_id": ..., "status": ...}]}
    """

    def __init__(self, database: Database):
        self._collection = database.create_collection("accept_tx_recovery")
        if "accept_id" not in self._collection.index_paths():
            self._collection.create_index("accept_id", unique=True)
            self._collection.create_index("status")

    def log_accept(self, accept_id: str, rfq_id: str, losing_bid_ids: list[str]) -> None:
        """``logAcceptBidTxUpdForRecovery``: record parent + planned children."""
        if self._collection.find_one({"accept_id": accept_id}) is not None:
            return
        self._collection.insert_one(
            {
                "accept_id": accept_id,
                "rfq_id": rfq_id,
                "status": PENDING if losing_bid_ids else COMMITTED,
                "children": [
                    {"bid_id": bid_id, "return_id": None, "status": PENDING}
                    for bid_id in losing_bid_ids
                ],
            }
        )

    def mark_child_committed(self, accept_id: str, bid_id: str, return_id: str) -> None:
        """Record a RETURN child's commit; closes the parent when all done."""
        record = self._collection.find_one({"accept_id": accept_id})
        if record is None:
            return
        changed = False
        for child in record["children"]:
            if child["bid_id"] == bid_id and child["status"] != COMMITTED:
                child["status"] = COMMITTED
                child["return_id"] = return_id
                changed = True
        if not changed:
            return
        if all(child["status"] == COMMITTED for child in record["children"]):
            record["status"] = COMMITTED
        self._collection.update_many({"accept_id": accept_id}, lambda _: record)

    def is_fully_committed(self, accept_id: str) -> bool:
        """Definition 2: parent committed iff all children committed."""
        record = self._collection.find_one({"accept_id": accept_id})
        return bool(record) and record["status"] == COMMITTED

    def status(self, accept_id: str) -> dict[str, Any] | None:
        return self._collection.find_one({"accept_id": accept_id})

    def pending_jobs(self) -> list[dict[str, Any]]:
        """Recovery (crash case 2): parents with uncommitted children."""
        return self._collection.find({"status": PENDING})


def determine_return_txs(
    escrow: KeyPair,
    accept_payload: dict[str, Any],
    locked_bids: list[dict[str, Any]],
) -> list[Transaction]:
    """``deterRtrnTxs``: build RETURNs for every non-winning locked bid.

    Args:
        escrow: the reserved account key pair (signs each RETURN).
        accept_payload: the committed ACCEPT_BID.
        locked_bids: escrow-held bids for the RFQ at commit time.

    Returns:
        Signed RETURN transactions, one per losing bid.
    """
    metadata = accept_payload.get("metadata") or {}
    win_bid_id = metadata.get("win_bid_id") or accept_payload.get("asset", {}).get("id")
    returns: list[Transaction] = []
    for bid in locked_bids:
        if bid["id"] == win_bid_id:
            continue
        transaction = build_return(
            escrow=escrow,
            losing_bid_payload=bid,
            accept_id=accept_payload["id"],
        )
        transaction.sign([escrow])
        returns.append(transaction)
    return returns


class NestedTransactionProcessor:
    """Receiver-node side of the non-locking protocol.

    Wired into the server's block-commit hook: for every committed
    ACCEPT_BID it determines children, persists the recovery record and
    enqueues the RETURN jobs.  ``submit`` is injected — in the cluster it
    routes each RETURN to a randomly selected validator node.
    """

    def __init__(
        self,
        escrow: KeyPair,
        database: Database,
        submit: Callable[[dict[str, Any]], None] | None = None,
    ):
        self.escrow = escrow
        self.queue = ReturnQueue()
        self.recovery = RecoveryLog(database)
        self._submit = submit

    def set_submitter(self, submit: Callable[[dict[str, Any]], None]) -> None:
        self._submit = submit

    def on_accept_committed(
        self, accept_payload: dict[str, Any], locked_bids: list[dict[str, Any]]
    ) -> list[ReturnJob]:
        """Algorithm 3 Commit part: log, build and enqueue RETURNs."""
        returns = determine_return_txs(self.escrow, accept_payload, locked_bids)
        metadata = accept_payload.get("metadata") or {}
        rfq_id = metadata.get("rfq_id") or (accept_payload.get("references") or [""])[0]
        self.recovery.log_accept(
            accept_payload["id"],
            rfq_id,
            [transaction.references[0] for transaction in returns],
        )
        jobs = []
        for transaction in returns:
            job = ReturnJob(
                accept_id=accept_payload["id"],
                bid_id=transaction.references[0],
                payload=transaction.to_dict(),
            )
            self.queue.put(job)
            jobs.append(job)
        return jobs

    def drain(self, max_jobs: int | None = None) -> int:
        """Run queued RETURN submissions through the injected submitter.

        Returns the number of jobs dispatched.  Jobs stay "pending" in the
        recovery log until :meth:`on_return_committed` confirms them.
        """
        if self._submit is None:
            return 0
        dispatched = 0
        while max_jobs is None or dispatched < max_jobs:
            job = self.queue.get()
            if job is None:
                break
            self._submit(job.payload)
            dispatched += 1
        return dispatched

    def on_return_committed(self, return_payload: dict[str, Any]) -> None:
        """Commit confirmation for a RETURN child (closes recovery entry)."""
        references = return_payload.get("references") or []
        if len(references) < 2:
            return
        bid_id, accept_id = references[0], references[1]
        self.recovery.mark_child_committed(accept_id, bid_id, return_payload["id"])
        self.queue.mark_done()

    def recover(self, locked_bids_lookup: Callable[[str], list[dict[str, Any]]]) -> int:
        """Crash case 2 ("while enqueueing RETURNs"): re-enqueue from the log.

        Args:
            locked_bids_lookup: rfq_id -> currently locked bids.

        Returns:
            Number of RETURN jobs re-enqueued.
        """
        reenqueued = 0
        for record in self.recovery.pending_jobs():
            accept_payload = {"id": record["accept_id"], "metadata": {"rfq_id": record["rfq_id"]},
                              "references": [record["rfq_id"]]}
            pending_bids = {
                child["bid_id"]
                for child in record["children"]
                if child["status"] != COMMITTED
            }
            locked = [
                bid for bid in locked_bids_lookup(record["rfq_id"]) if bid["id"] in pending_bids
            ]
            for transaction in determine_return_txs(self.escrow, accept_payload, locked):
                self.queue.put(
                    ReturnJob(
                        accept_id=record["accept_id"],
                        bid_id=transaction.references[0],
                        payload=transaction.to_dict(),
                    )
                )
                reenqueued += 1
        return reenqueued
