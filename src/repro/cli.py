"""Command-line interface: quick demos and experiment summaries.

Usage::

    python -m repro info                 # system inventory
    python -m repro demo                 # one reverse auction, narrated
    python -m repro compare [--size N]   # SCDB vs ETH-SC at one payload size
    python -m repro workload [--total N] # show the scaled paper mix
    python -m repro shard [--shards N]   # sharded cluster + cross-shard 2PC demo
    python -m repro recover              # durability demo: write -> kill -> recover
    python -m repro simtest --seed 7 --steps 500   # deterministic chaos run
    python -m repro byzantine --seed 7   # narrated byzantine-fault demo
    python -m repro trace --seed 7       # span tree of one cross-shard tx
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.schema import OPERATION_SCHEMAS

    print(f"repro {repro.__version__} — SmartchainDB reproduction (EDBT 2025)")
    print("\nnative transaction types:")
    for operation in OPERATION_SCHEMAS:
        print(f"  {operation}")
    print("\nsubsystems: core (declarative types), storage (document store),")
    print("consensus (Tendermint/IBFT), crypto (Ed25519), ethereum (ETH-SC")
    print("baseline), sim (discrete events), workloads, metrics, analytics,")
    print("sharding (consistent-hash partitioning + cross-shard 2PC —")
    print("try `python -m repro shard`), simtest (deterministic chaos")
    print("harness — try `python -m repro simtest --seed 7 --steps 200`)")
    print("\ncrypto fast path: windowed Ed25519 + RLC batch verification +")
    print("cluster-wide signature cache — try `python -m repro crypto`")
    print("\ndurability: per-node segmented WAL with group commit, snapshots")
    print("and crash-restart recovery from disk — try `python -m repro recover`")
    print("\nsee DESIGN.md for the full inventory, EXPERIMENTS.md for results")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import ClusterConfig, SmartchainCluster
    from repro.crypto import keypair_from_string

    cluster = SmartchainCluster(ClusterConfig(n_validators=args.validators))
    driver = cluster.driver
    sally = keypair_from_string("sally")
    suppliers = [keypair_from_string(f"supplier-{index}") for index in range(3)]

    print(f"[1/4] {len(suppliers)} suppliers mint capability assets")
    creates = []
    for keypair in suppliers:
        create = driver.prepare_create(keypair, {"capabilities": ["3d-print"]})
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()

    print("[2/4] sally posts a REQUEST")
    request = driver.prepare_request(sally, ["3d-print"])
    cluster.submit_and_settle(request)

    print("[3/4] suppliers BID (assets escrowed natively)")
    bids = []
    for keypair, create in zip(suppliers, creates):
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_payload(bid.to_dict())
        bids.append(bid)
    cluster.run()

    print("[4/4] sally ACCEPT_BIDs supplier-1; losing bids RETURN automatically")
    accept = driver.prepare_accept_bid(sally, request.tx_id, bids[1])
    cluster.submit_and_settle(accept)

    server = cluster.any_server()
    returns = server.database.collection("transactions").count({"operation": "RETURN"})
    print(f"\ncommitted: {len(cluster.committed_records())} transactions "
          f"({returns} RETURN children), all natively validated")
    print(f"eventual commit holds: {server.nested.recovery.is_fully_committed(accept.tx_id)}")
    return 0


def _cmd_crypto(args: argparse.Namespace) -> int:
    """Narrated demo of the batched signature-verification pipeline.

    (No wall-clock timing here — the simulator bans wall-clock imports;
    run ``benchmarks/test_crypto_batching.py`` for measured speedups.)
    """
    from repro.crypto import ed25519
    from repro.crypto.sigcache import SignatureCache, set_shared_cache

    size = args.batch
    print(f"[1/3] sign {size} transactions ({size} distinct Ed25519 keys)")
    triples = []
    for number in range(size):
        seed = number.to_bytes(4, "big") * 8
        message = f"demo-payload-{number}".encode() * 8
        triples.append(
            (
                ed25519.public_key_from_seed(seed),
                message,
                ed25519.sign(seed, message),
            )
        )

    print("[2/3] one RLC batch equation settles the whole batch")
    verdicts = ed25519.verify_batch(triples)
    print(f"  all {sum(verdicts)}/{size} valid via a single multi-scalar check")
    forged = list(triples)
    forged[0] = (forged[0][0], b"tampered payload", forged[0][2])
    verdicts = ed25519.verify_batch(forged)
    print(
        f"  with one forgery injected: {sum(verdicts)}/{size} valid — the bad"
        " signature falls back alone, batchmates unaffected"
    )

    print("[3/3] replica re-checks hit the cluster-wide signature cache")
    cache = SignatureCache()
    previous = set_shared_cache(cache)
    try:
        for public, message, signature in triples:
            key = cache.key(public, message, signature)
            if cache.get(key) is None:  # proposer pass seeds
                cache.put(key, True)
        assert all(
            cache.get(cache.key(*triple)) for triple in triples
        )  # replica pass: pure lookups
    finally:
        set_shared_cache(previous)
    print(f"  cache stats after one replica pass: {cache.stats()}")
    print("\nsame pipeline inside the cluster: blocks verify batch-first,")
    print("CheckTx verdicts memoise per validator, conflict-free lanes")
    print("validate in parallel (see benchmarks/EXPERIMENTS.md)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_table, ratio
    from repro.workloads import ScenarioSpec, run_eth_scenario, run_scdb_scenario

    spec = ScenarioSpec(
        n_windows=4,
        creates_per_window=4,
        bids_per_window=4,
        payload_bytes=args.size,
        phased=True,
        scale_caps_with_payload=True,
        eth_block_gas_limit=6_000_000,
    )
    print(f"running both systems at {args.size} B payloads (4 validators)...")
    scdb = run_scdb_scenario(spec).metrics
    eth = run_eth_scenario(spec).metrics
    rows = []
    for operation in ("CREATE", "REQUEST", "BID", "ACCEPT_BID"):
        rows.append(
            [operation, scdb.latency(operation), eth.latency(operation),
             ratio(eth.latency(operation), scdb.latency(operation))]
        )
    rows.append(["-- throughput (tps)", scdb.throughput_tps, eth.throughput_tps,
                 ratio(scdb.throughput_tps, eth.throughput_tps)])
    print(format_table(
        ["metric", "SCDB", "ETH-SC", "factor"], rows,
        title=f"declarative vs smart contract at {args.size} B",
    ))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_table
    from repro.workloads import WorkloadGenerator, WorkloadSpec
    from repro.workloads.generator import PAPER_MIX

    generator = WorkloadGenerator(WorkloadSpec(total=args.total))
    counts = generator.counts()
    rows = [
        [operation, PAPER_MIX[operation], counts.get(operation, 0)]
        for operation in PAPER_MIX
    ]
    print(format_table(
        ["type", "paper (110k)", f"scaled ({args.total})"], rows,
        title="Section 5.1.3 workload mix",
    ))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.crypto import keypair_from_string
    from repro.metrics.report import format_table
    from repro.sharding import ShardedCluster, ShardedClusterConfig
    from repro.sharding.router import SHARD_KEY_METADATA

    cluster = ShardedCluster(ShardedClusterConfig(n_shards=args.shards))
    driver = cluster.driver
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")

    print(f"[1/3] {args.shards}-shard cluster "
          f"({cluster.config.n_validators} validators each); alice mints an asset")
    create = driver.prepare_create(alice, {"capabilities": ["3d-print"]})
    cluster.submit_and_settle(create)
    home = cluster.router.home_of_tx(create.tx_id)
    print(f"      asset born on its ring shard: {home}")

    target = next(
        (shard for shard in cluster.shard_ids if shard != home), home
    )
    key = cluster.ring.key_landing_on(target, prefix="mig")
    print(f"[2/3] alice transfers it to bob with a shard_key homing on {target}")
    transfer = driver.prepare_transfer(
        alice, [(create.tx_id, 0, 1)], create.tx_id,
        [(bob.public_key, 1)], metadata={SHARD_KEY_METADATA: key},
    )
    decision = cluster.router.route(transfer.to_dict())
    kind = "cross-shard (2PC)" if decision.cross_shard else "single-shard"
    print(f"      routed {kind}: home={decision.home} inputs on "
          f"{sorted(decision.input_shards)}")
    record = cluster.submit_and_settle(transfer)
    outcome = "committed" if record.committed_at is not None else f"rejected: {record.rejected}"
    suffix = ""
    if decision.cross_shard and record.committed_at is not None:
        suffix = f" (prepare locked the spent UTXO on {home}, commit retired it)"
    print(f"      outcome: {outcome}{suffix}")

    print("[3/3] placement + 2PC counters")
    stats = cluster.placement_stats()
    rows = [
        [shard_id, shard["committed"], shard["coordinated"], shard["locks_granted"]]
        for shard_id, shard in sorted(stats["shards"].items())
    ]
    print(format_table(
        ["shard", "committed", "2PC coordinated", "locks granted"], rows,
        title=f"router: {stats['router']}",
    ))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Narrated durability demo: write -> kill -> recover -> invariants."""
    from repro.crypto import keypair_from_string
    from repro.durability.node import DurabilityConfig
    from repro.sharding import ShardedCluster, ShardedClusterConfig
    from repro.sharding.router import SHARD_KEY_METADATA
    from repro.simtest.invariants import InvariantChecker
    from repro.simtest.plane import FaultPlane

    print(f"[1/4] {args.shards}-shard durable cluster: every node and 2PC agent "
          "journals to its own SimDisk (group-commit WAL + snapshots)")
    cluster = ShardedCluster(
        ShardedClusterConfig(
            n_shards=args.shards,
            durability=DurabilityConfig(snapshot_interval=80),
        )
    )
    driver = cluster.driver
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    creates = []
    for index in range(10):
        create = driver.prepare_create(alice, {"capabilities": ["3d-print"], "rank": index})
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    home = cluster.router.home_of_tx(creates[0].tx_id)
    # With one shard there is nowhere to migrate: the demo still works,
    # the first transfer just stays shard-local.
    target = next((shard for shard in cluster.shard_ids if shard != home), None)
    metadata = (
        {SHARD_KEY_METADATA: cluster.ring.key_landing_on(target, prefix="mig")}
        if target is not None
        else None
    )
    transfer = driver.prepare_transfer(
        alice, [(creates[0].tx_id, 0, 1)], creates[0].tx_id,
        [(bob.public_key, 1)], metadata=metadata,
    )
    cluster.submit_payload(transfer.to_dict())
    for create in creates[1:6]:
        local = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
        )
        cluster.submit_payload(local.to_dict())
    cluster.run()
    committed = len(cluster.committed_records())
    shard = cluster.shards[home]
    node = shard.engine.validator_order[0]
    durability = shard.node_durability[node]
    cross_note = "one cross-shard 2PC" if target is not None else "all shard-local"
    print(f"      committed {committed} transactions ({cross_note}); "
          f"{home}/{node} journaled {durability.wal.stats['records']} WAL records, "
          f"snapshot at lsn {durability.wal.snapshot_lsn}")

    torn = args.torn_bytes
    print(f"[2/4] kill {home}/{node} and {home}'s 2PC agent: memory discarded, "
          f"each disk loses its unsynced tail keeping {torn} torn bytes mid-frame")
    blocks_before = shard.servers[node].database.collection("blocks").count({})

    print("[3/4] restore both purely from their SimDisks "
          "(newest valid snapshot + scan-to-torn-tail WAL replay)")
    cluster.restart_node_from_disk(home, node, torn_bytes=torn)
    cluster.restart_coordinator_from_disk(home, torn_bytes=torn)
    cluster.run()
    blocks_after = shard.servers[node].database.collection("blocks").count({})
    print(f"      chain rebuilt: {blocks_after} blocks (was {blocks_before}); "
          "torn tail truncated, journal continues from the last valid record")

    print("[4/4] full invariant registry over the recovered deployment")
    plane = FaultPlane(cluster)
    checker = InvariantChecker(plane)
    plane.quiesce()
    violations = checker.check_quiesce(step=0)
    for name in sorted(checker.checks_run):
        print(f"      checked {name}")
    if violations:
        for violation in violations:
            print(f"      VIOLATION {violation.describe()}")
        return 1
    print(f"\nall {len(checker.checks_run)} invariants held — the node rejoined "
          "the cluster from disk state alone")
    print("(durability bench: PYTHONPATH=src python benchmarks/test_durability.py)")
    return 0


def _cmd_reshard(args: argparse.Namespace) -> int:
    """Narrated elastic-resharding demo: hot shard -> auto-split under
    traffic -> controller crash at the commit point -> roll forward ->
    invariants."""
    from repro.crypto import keypair_from_string
    from repro.durability.node import DurabilityConfig
    from repro.sharding import ShardedCluster, ShardedClusterConfig
    from repro.sharding.migration import MigrationPolicy
    from repro.sharding.router import SHARD_KEY_METADATA
    from repro.simtest.invariants import InvariantChecker
    from repro.simtest.plane import FaultPlane

    print(f"[1/5] {args.shards}-shard durable cluster with the hot-shard "
          "auto-split policy armed (split when one shard carries >"
          f"{int(args.hot_share * 100)}% of the commit window)")
    cluster = ShardedCluster(
        ShardedClusterConfig(
            n_shards=args.shards,
            seed=args.seed,
            durability=DurabilityConfig(snapshot_interval=80),
            auto_split=True,
            migration_policy=MigrationPolicy(
                hot_share_threshold=args.hot_share,
                window=24,
                min_observations=12,
                cooldown=1.0,
            ),
        )
    )
    driver = cluster.driver
    alice = keypair_from_string("alice")
    hot = cluster.shard_ids[0]
    pin = {SHARD_KEY_METADATA: cluster.ring.key_landing_on(hot, prefix="zipf")}

    # Zipf-shaped load: the skewed head of the key space all lands on one
    # shard (pinned via the shard-key metadata the router honors).
    crash_state = {"sprung": False, "migration": None}

    def crash_at_cutover(migration_id, phase):
        if phase == "cutover" and not crash_state["sprung"]:
            crash_state["sprung"] = True
            crash_state["migration"] = migration_id
            cluster.loop.schedule_in(
                0.0,
                lambda: cluster.migrator.restart_from_disk(torn_bytes=args.torn_bytes),
            )

    cluster.migrator.phase_listeners.append(crash_at_cutover)
    creates = []
    for index in range(args.hot_txs):
        create = driver.prepare_create(
            alice, {"capabilities": ["3d-print"], "rank": index}, metadata=dict(pin)
        )
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    committed_before = len(cluster.committed_records())
    share_shard, share = cluster.migrator.hot_shard_share()
    print(f"      {committed_before} commits, hot shard {share_shard} at "
          f"{share:.0%} of the window")

    splits = cluster.migrator.stats["auto_splits"]
    if splits == 0:
        print("      (policy never tripped — rerun with more --hot-txs)")
        return 1
    migration_id = crash_state["migration"]
    doc = cluster.migrator.journal_record(migration_id) if migration_id else None
    print(f"[2/5] policy tripped: {splits} auto-split(s), deployment grew to "
          f"{len(cluster.shard_ids)} shards")
    if doc is not None:
        print(f"[3/5] controller killed at {migration_id}'s cutover (journal "
              f"tail torn at {args.torn_bytes} bytes) — the forced cutover "
              "record is the commit point, so recovery rolls FORWARD")
        print(f"      {migration_id}: phase={doc['phase']} "
              f"moved={len(doc.get('moved') or [])} refs "
              f"{doc['source']} -> {doc['target']}")
        if doc["phase"] != "done":
            print("      VIOLATION: post-cutover crash must roll forward")
            return 1
    else:
        print("[3/5] (no cutover crash landed this run)")

    print("[4/5] traffic follows the split keys to their new home shard")
    bob = keypair_from_string("bob")
    moved_txs = {row[0] for row in (doc.get("moved") or [])} if doc else set()
    submitted = 0
    for create in creates:
        if submitted >= args.hot_txs:
            break
        if moved_txs and create.tx_id not in moved_txs:
            continue
        transfer = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
        )
        driver.submit(transfer)
        submitted += 1
    cluster.run()
    committed_after = len(cluster.committed_records()) - committed_before
    before_rate = committed_before / max(1, args.hot_txs)
    after_rate = committed_after / max(1, submitted)
    recovery = after_rate / max(1e-9, before_rate)
    _share_shard, share_after = cluster.migrator.hot_shard_share()
    stats = cluster.migrator.stats
    print(f"      {committed_after}/{submitted} spends of the moved keys "
          f"committed (commit-rate recovery {recovery:.0%} of pre-split), "
          f"hottest share now {share_after:.0%}")
    print(f"      reshard stats: started={stats['started']} done={stats['done']} "
          f"rolled_back={stats['rolled_back']} refs_moved={stats['refs_moved']}")

    print("[5/5] full invariant registry over the resharded deployment")
    plane = FaultPlane(cluster)
    checker = InvariantChecker(plane)
    plane.quiesce()
    violations = checker.check_quiesce(step=0)
    if violations:
        for violation in violations:
            print(f"      VIOLATION {violation.describe()}")
        return 1
    print(f"\nall {len(checker.checks_run)} invariants held — keys split off "
          "the hot shard mid-crash and nothing was lost or duplicated")
    print("(chaos coverage: PYTHONPATH=src python -m repro simtest --elastic-rate 0.05)")
    return 0


def _cmd_simtest(args: argparse.Namespace) -> int:
    from repro.simtest import SimHarness, SimtestConfig

    config = SimtestConfig(
        seed=args.seed,
        steps=args.steps,
        single=args.single,
        n_shards=args.shards,
        n_validators=args.validators,
        fault_rate=args.fault_rate,
        byzantine_rate=args.byzantine_rate,
        adversarial_rate=args.adversarial_rate,
        elastic_rate=args.elastic_rate,
        durable=not args.volatile,
    )
    shape = "single cluster" if config.single else f"{config.n_shards} shards"
    print(
        f"simtest seed={config.seed} steps={config.steps} {shape} "
        f"({config.n_validators} validators each) fault_rate={config.fault_rate}"
        f" byzantine_rate={config.byzantine_rate}"
        f" adversarial_rate={config.adversarial_rate}"
        f" elastic_rate={config.elastic_rate}"
    )
    harness = SimHarness(config)
    schedule_path = f"{args.out_prefix}_schedule.json"
    log_path = f"{args.out_prefix}_invariants.log"
    # The fault plan exists before the run does — persist it up front so
    # a hung or crashed run (the case CI's per-seed timeout kills) still
    # leaves its schedule on disk for replay.
    with open(schedule_path, "w") as handle:
        handle.write(harness.schedule.to_json() + "\n")
    report = harness.run()

    with open(log_path, "w") as handle:
        for line in report.step_log:
            handle.write(line + "\n")
        for line in report.invariant_log:
            handle.write(line + "\n")

    stats = report.stats["workload"]
    print(
        f"ran {report.steps_run} steps, {len(report.schedule.actions)} scheduled faults, "
        f"sim_time={report.stats['sim_time']:.3f}s, {report.stats['events']} events"
    )
    print(
        f"workload: submitted={stats['submitted']} committed={stats['committed']} "
        f"rejected={stats['rejected']} conflicts={stats['conflicts']} cross={stats['cross']}"
    )
    if config.adversarial_rate > 0:
        print(
            f"adversary: double_submits={stats['double_submits']} "
            f"forged={stats['forged']} forged_admitted={stats['forged_admitted']}"
        )
    if config.elastic_rate > 0 and "reshard" in report.stats:
        reshard = report.stats["reshard"]
        print(
            f"reshard: started={reshard['started']} done={reshard['done']} "
            f"rolled_back={reshard['rolled_back']} refs_moved={reshard['refs_moved']}"
        )
    print(
        f"invariants: {report.stats['invariants_registered']} registered; "
        f"logs: {schedule_path}, {log_path}"
    )
    if report.violations:
        import json as json_module

        bundle_path = f"{args.out_prefix}_repro.json"
        with open(bundle_path, "w") as handle:
            handle.write(report.bundle.to_json() + "\n")
        # Standalone flight-recorder dump (also embedded in the bundle):
        # CI's failure-artifact glob picks it up next to the schedule.
        flight_path = f"{args.out_prefix}_flight.json"
        with open(flight_path, "w") as handle:
            json_module.dump(report.bundle.flight, handle, sort_keys=True, indent=2)
            handle.write("\n")
        first = report.violations[0]
        print(
            f"FAILED: invariant {first.invariant} at step {first.step}: {first.detail}"
        )
        traced = len(report.bundle.flight.get("traces", {}))
        print(
            f"repro bundle: {bundle_path} (replay with the same --seed); "
            f"flight recorder: {flight_path} "
            f"({len(report.bundle.flight.get('events', []))} events, "
            f"{traced} implicated trace(s))"
        )
        return 1
    print("all invariants held (per-step and at quiesce)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Narrated observability demo: trace one cross-shard transaction
    through submit, 2PC prepare, consensus, WAL group commit and apply,
    then print the deployment's latency percentiles."""
    from repro.crypto import keypair_from_string
    from repro.durability.node import DurabilityConfig
    from repro.sharding import ShardedCluster, ShardedClusterConfig
    from repro.sharding.router import SHARD_KEY_METADATA

    print(f"[1/3] 2-shard durable cluster, every transaction traced (seed={args.seed})")
    cluster = ShardedCluster(
        ShardedClusterConfig(
            n_shards=2,
            seed=args.seed,
            trace_sample_rate=1.0,
            durability=DurabilityConfig(),
        )
    )
    driver = cluster.driver
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    create = driver.prepare_create(alice, {"capabilities": ["3d-print"]})
    cluster.submit_and_settle(create)
    home = cluster.router.home_of_tx(create.tx_id)
    target = next(shard for shard in cluster.shard_ids if shard != home)
    print(f"      asset minted on {home}; migrating it to {target} forces 2PC")

    print("[2/3] cross-shard transfer: facade submit -> prepare locks -> home")
    print("      consensus -> decision broadcast -> ack (one stitched timeline)")
    transfer = driver.prepare_transfer(
        alice, [(create.tx_id, 0, 1)], create.tx_id,
        [(bob.public_key, 1)],
        metadata={SHARD_KEY_METADATA: cluster.ring.key_landing_on(target, prefix="mig")},
    )
    record = cluster.submit_and_settle(transfer)
    outcome = "committed" if record.committed_at is not None else f"rejected: {record.rejected}"
    print(f"      outcome: {outcome}\n")
    print(cluster.telemetry.tracer.render_tree(transfer.tx_id))

    print("\n[3/3] registry percentiles (exact, from the shared histogram)")
    summary = cluster.latency_percentiles()
    if summary.get("count"):
        print(
            "      tx_commit_latency_ms: "
            + "  ".join(
                f"{key}={summary[key]:.3f}"
                for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
            )
            + f"  (n={summary['count']})"
        )
    flight = cluster.telemetry.flight
    print(
        f"      flight recorder: {len(flight.dump())} events resident "
        f"({flight.recorded} recorded, {flight.dropped} dropped)"
    )
    print("\nsame instruments feed the chaos harness's repro bundles: on an")
    print("invariant failure the bundle carries this exact span timeline")
    return 0


def _cmd_byzantine(args: argparse.Namespace) -> int:
    """Narrated byzantine-fault demo: liars + adversarial clients, with
    the f<n/3 safety invariants watching every step."""
    from collections import Counter

    from repro.simtest import SimHarness, SimtestConfig
    from repro.simtest.schedule import BYZANTINE_KINDS

    config = SimtestConfig(
        seed=args.seed,
        steps=args.steps,
        byzantine_rate=args.byzantine_rate,
        adversarial_rate=args.adversarial_rate,
        fault_rate=0.05,
    )
    harness = SimHarness(config)
    plane = harness.plane

    print(
        f"[1/4] seeded corruption plan (seed={config.seed}, steps={config.steps}, "
        f"{config.n_shards} shards x {config.n_validators} validators)"
    )
    marks = [a for a in harness.schedule.actions if a.kind in BYZANTINE_KINDS]
    heals = [a for a in harness.schedule.actions if a.kind == "byz_heal"]
    cap = plane.byzantine_cap(plane.shard_ids[0])
    print(
        f"      {len(marks)} byzantine windows planned, each healed later "
        f"({len(heals)} heals); never more than f={cap} liar(s) per "
        f"{config.n_validators}-validator shard — the f<n/3 cap"
    )
    for action in marks[:6]:
        print(
            f"      step {action.step:>3}: {action.shard}/{action.node} "
            f"turns {action.kind.removeprefix('byz_')}"
        )
    if len(marks) > 6:
        print(f"      ... and {len(marks) - 6} more")

    print(
        "[2/4] run it: equivocating proposers, double-voters, vote withholders "
        "and stale replicas inside; double-submitting and signature-forging "
        "clients outside"
    )
    report = harness.run()
    stats = report.stats["workload"]
    print(
        f"      {report.steps_run} steps: submitted={stats['submitted']} "
        f"committed={stats['committed']} double_submits={stats['double_submits']} "
        f"forged={stats['forged']}"
    )

    print("[3/4] honest validators kept receipts (misbehavior evidence)")
    evidence: Counter[str] = Counter()
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        for node_id in shard.engine.validator_order:
            for entry in shard.engine.validator(node_id).evidence:
                evidence[entry["kind"]] += 1
    if evidence:
        for kind, count in sorted(evidence.items()):
            print(f"      {kind}: {count} recorded")
    else:
        print("      (no liar drew a misbehaving hand this seed — rerun with "
              "--byzantine-rate 0.4)")

    print("[4/4] the safety ledger")
    print(
        f"      forged-signature txs admitted to a block: {stats['forged_admitted']} "
        "(no_forged_admission)"
    )
    if report.violations:
        first = report.violations[0]
        print(f"\nFAILED: invariant {first.invariant}: {first.detail}")
        print(f"replay: {report.bundle.replay_command()}")
        return 1
    print(
        "      honest replicas never diverged (honest_no_divergence) and no "
        "committed block was rolled back (equivocation_contained)"
    )
    print(
        f"\nall invariants held across {len(marks)} byzantine windows — "
        "lies cost liars their voice, never the cluster its safety"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SmartchainDB reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="system inventory").set_defaults(func=_cmd_info)

    demo = subparsers.add_parser("demo", help="run one narrated reverse auction")
    demo.add_argument("--validators", type=int, default=4)
    demo.set_defaults(func=_cmd_demo)

    crypto = subparsers.add_parser(
        "crypto", help="demo the batched Ed25519 verification fast path"
    )
    crypto.add_argument("--batch", type=int, default=32, help="signatures per batch")
    crypto.set_defaults(func=_cmd_crypto)

    compare = subparsers.add_parser("compare", help="SCDB vs ETH-SC at one payload size")
    compare.add_argument("--size", type=int, default=1115, help="payload bytes")
    compare.set_defaults(func=_cmd_compare)

    workload = subparsers.add_parser("workload", help="show the scaled paper mix")
    workload.add_argument("--total", type=int, default=1100)
    workload.set_defaults(func=_cmd_workload)

    shard = subparsers.add_parser(
        "shard", help="sharded cluster demo: routing + one cross-shard 2PC"
    )
    shard.add_argument("--shards", type=int, default=2)
    shard.set_defaults(func=_cmd_shard)

    recover = subparsers.add_parser(
        "recover",
        help="durability demo: write, kill a node, restore purely from its SimDisk",
    )
    recover.add_argument("--shards", type=int, default=2)
    recover.add_argument(
        "--torn-bytes", type=int, default=11,
        help="bytes of the unsynced tail that durably survive the power failure",
    )
    recover.set_defaults(func=_cmd_recover)

    reshard = subparsers.add_parser(
        "reshard",
        help="narrated elastic-resharding demo: hot-shard auto-split under "
        "traffic, controller crash at cutover, roll-forward, invariants",
    )
    reshard.add_argument("--seed", type=int, default=19)
    reshard.add_argument("--shards", type=int, default=2)
    reshard.add_argument("--hot-txs", type=int, default=28,
                         help="pinned transactions per traffic phase")
    reshard.add_argument("--hot-share", type=float, default=0.55,
                         help="auto-split threshold on the hot shard's window share")
    reshard.add_argument("--torn-bytes", type=int, default=17,
                         help="torn tail kept when the controller journal is killed")
    reshard.set_defaults(func=_cmd_reshard)

    simtest = subparsers.add_parser(
        "simtest",
        help="deterministic chaos run: seeded fault schedule + invariant checks",
    )
    simtest.add_argument("--seed", type=int, default=2024)
    simtest.add_argument("--steps", type=int, default=200)
    simtest.add_argument("--shards", type=int, default=3)
    simtest.add_argument("--validators", type=int, default=4)
    simtest.add_argument("--fault-rate", type=float, default=0.12)
    simtest.add_argument(
        "--byzantine-rate", type=float, default=0.0,
        help="per-step chance of marking a validator byzantine (capped at f<n/3)",
    )
    simtest.add_argument(
        "--adversarial-rate", type=float, default=0.0,
        help="share of workload steps spent on double-submits and forged signatures",
    )
    simtest.add_argument(
        "--elastic-rate", type=float, default=0.0,
        help="per-step chance of a live shard migration (with crash traps armed "
        "on migration phases)",
    )
    simtest.add_argument(
        "--single", action="store_true", help="drive one unsharded cluster instead"
    )
    simtest.add_argument(
        "--volatile",
        action="store_true",
        help="disable per-node durability (no SimDisks, no crash_restart faults)",
    )
    simtest.add_argument(
        "--out-prefix", default="SIMTEST", help="prefix for schedule/log/repro files"
    )
    simtest.set_defaults(func=_cmd_simtest)

    trace = subparsers.add_parser(
        "trace",
        help="observability demo: span tree of one cross-shard transaction",
    )
    trace.add_argument("--seed", type=int, default=7)
    trace.set_defaults(func=_cmd_trace)

    byzantine = subparsers.add_parser(
        "byzantine",
        help="narrated byzantine demo: lying validators, adversarial clients, "
        "f<n/3 safety invariants",
    )
    byzantine.add_argument("--seed", type=int, default=7)
    byzantine.add_argument("--steps", type=int, default=150)
    byzantine.add_argument("--byzantine-rate", type=float, default=0.25)
    byzantine.add_argument("--adversarial-rate", type=float, default=0.25)
    byzantine.set_defaults(func=_cmd_byzantine)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
