"""Crash-restart recovery: snapshot + WAL suffix -> rebuilt node state.

The journal vocabulary (every record is a small canonical-JSON dict):

* ``{"k": "db", "op": ..., "c": <collection>, ...}`` — one logical
  mutation of a journaled :class:`~repro.storage.database.Database`:
  ``insert`` (the frozen stored document), ``delete`` / ``update``
  (query + update document, replayed through the same code path), or
  ``replace`` (the computed replacement documents of a callable update,
  in match order — callables cannot be serialised, their *effects* can).
* ``{"k": "block", "b": <block record>}`` — one committed block with
  its full envelopes, so a restarted validator can rebuild its chain
  (and serve catch-up) with byte-identical block ids.
* ``{"k": "lock", "r": <round>, "b": <block record>}`` — the Tendermint
  lock the consensus engine must not forget across a crash
  (arXiv:1807.04938's write-ahead consensus state); cleared implicitly
  once a block at or past the locked height commits.

Recovery is *scan to torn tail*: repair the WAL (truncate the torn
suffix), load the newest valid snapshot, then replay every journal
record with an LSN past the snapshot.  The result is exactly the state
whose journal records were durably synced — the longest valid prefix of
the node's history, never a partial frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.encoding import canonical_serialize, deep_copy_json
from repro.consensus.types import Block, TxEnvelope
from repro.storage.database import Database
from repro.durability.wal import SegmentedWal


# -- block (de)serialisation --------------------------------------------------


def block_record(block: Block) -> dict[str, Any]:
    """Serialise a consensus block, envelopes included."""
    return {
        "h": block.height,
        "r": block.round,
        "p": block.proposer,
        "prev": block.previous_id,
        "id": block.block_id,
        "txs": [
            [
                envelope.tx_id,
                envelope.payload,
                envelope.size_bytes,
                envelope.weight,
                envelope.submitted_at,
            ]
            for envelope in block.transactions
        ],
    }


def rebuild_block(record: dict[str, Any]) -> Block:
    """Inverse of :func:`block_record` (block id preserved verbatim)."""
    return Block(
        height=record["h"],
        round=record["r"],
        proposer=record["p"],
        transactions=tuple(
            TxEnvelope(
                tx_id=item[0],
                payload=item[1],
                size_bytes=item[2],
                weight=item[3],
                submitted_at=item[4],
            )
            for item in record["txs"]
        ),
        previous_id=record["prev"],
        block_id=record["id"],
    )


# -- database journal replay --------------------------------------------------


def apply_db_op(database: Database, op: dict[str, Any]) -> None:
    """Replay one journaled mutation against a (journal-free) database."""
    collection = database.create_collection(op["c"])
    kind = op["op"]
    if kind == "insert":
        collection.insert_one(op["d"])
    elif kind == "delete":
        collection.delete_many(op["q"])
    elif kind == "update":
        collection.update_many(op["q"], op["u"])
    elif kind == "replace":
        replacements = iter(op["r"])
        collection.update_many(op["q"], lambda _: next(replacements))
    else:
        raise ValueError(f"unknown journaled db op {kind!r}")


def collections_state(database: Database) -> dict[str, list[dict[str, Any]]]:
    """Full dump of every collection, in stored (insertion) order."""
    return {
        name: database.collection(name).find({}, copy=True)
        for name in database.collection_names()
    }


def load_collections(
    database: Database, state: dict[str, list[dict[str, Any]]]
) -> None:
    """Insert a snapshot dump back, preserving insertion order."""
    for name, documents in state.items():
        collection = database.create_collection(name)
        for document in documents:
            collection.insert_one(document)


def diff_databases(live: Database, recovered: Database) -> list[str]:
    """Human-readable differences between two databases' contents."""
    problems = []
    names = sorted(set(live.collection_names()) | set(recovered.collection_names()))
    for name in names:
        live_docs = sorted(
            canonical_serialize(doc)
            for doc in (live.collection(name).find({}, copy=False) if name in live else [])
        )
        rec_docs = sorted(
            canonical_serialize(doc)
            for doc in (
                recovered.collection(name).find({}, copy=False)
                if name in recovered
                else []
            )
        )
        if live_docs != rec_docs:
            missing = len([doc for doc in live_docs if doc not in rec_docs])
            ghost = len([doc for doc in rec_docs if doc not in live_docs])
            problems.append(
                f"collection {name!r}: disk replay diverges from live state "
                f"(missing={missing} ghost={ghost})"
            )
    return problems


# -- full node recovery -------------------------------------------------------


@dataclass
class RecoveredState:
    """Everything a restart-from-disk rebuilds."""

    database: Database
    block_records: list[dict[str, Any]] = field(default_factory=list)
    lock: dict[str, Any] | None = None
    last_lsn: int = 0
    snapshot_lsn: int = 0
    replayed: int = 0
    #: height -> commit certificate (quorum precommit signatures) for
    #: every recovered block that journaled one; a restarted node must
    #: be able to *serve* verifiable catch-up, not just follow it.
    certs: dict[int, dict[str, Any]] = field(default_factory=dict)

    def blocks(self) -> list[Block]:
        return [rebuild_block(record) for record in self.block_records]

    def locked(self) -> tuple[int, Block | None]:
        """(locked_round, locked_block) after clearing decided locks."""
        if self.lock is None:
            return -1, None
        block = rebuild_block(self.lock["b"])
        chain_height = self.block_records[-1]["h"] if self.block_records else 0
        if block.height <= chain_height:
            # The locked height committed (this block or another): the
            # live node would have dropped the lock at apply time.
            return -1, None
        return self.lock["r"], block


def recover(durability: Any, database_factory: Callable[[], Database], repair: bool = True) -> RecoveredState:
    """Rebuild one node's durable state from its device.

    Args:
        durability: the node's :class:`~repro.durability.node.NodeDurability`.
        database_factory: builds the empty, *journal-free* database with
            the right collection layout/indexes; the journal reattaches
            only after replay (replaying must not re-journal).
        repair: truncate the torn tail and rebind the live WAL so that
            post-recovery appends extend the valid prefix.  Pass False
            for pure-read verification (the durability invariant).

    Returns:
        The rebuilt state; when ``repair`` is True the ``durability``
        handle's WAL is reopened on the repaired device and its append
        counter continues after the last surviving record.
    """
    wal = SegmentedWal(
        durability.disk,
        prefix=durability.wal.prefix,
        segment_max_bytes=durability.wal.segment_max_bytes,
    )
    if repair:
        wal.repair()
    database = database_factory()
    state = RecoveredState(database=database)
    snapshot = durability.snapshots.latest()
    if snapshot is not None:
        state.snapshot_lsn, snap_state = snapshot
        load_collections(database, snap_state.get("collections", {}))
        state.block_records = deep_copy_json(snap_state.get("blocks", []))
        state.lock = deep_copy_json(snap_state.get("lock"))
        # Certificates snapshot as [height, cert] pairs (canonical JSON
        # keys must be strings; heights are ints).
        for height, cert in deep_copy_json(snap_state.get("certs", [])):
            state.certs[height] = cert
    for lsn, record in wal.scan():
        if lsn <= state.snapshot_lsn:
            continue
        kind = record.get("k")
        if kind == "db":
            apply_db_op(database, record)
        elif kind == "block":
            state.block_records.append(record["b"])
            if record.get("cert") is not None:
                state.certs[record["b"]["h"]] = record["cert"]
        elif kind == "lock":
            state.lock = {"r": record["r"], "b": record["b"]}
        state.last_lsn = max(state.last_lsn, lsn)
        state.replayed += 1
    state.last_lsn = max(state.last_lsn, state.snapshot_lsn)
    if repair:
        wal.next_lsn = state.last_lsn + 1
        wal.snapshot_lsn = state.snapshot_lsn
        durability.reopen(wal)
    return state


def scan_block_records(durability: Any, from_height: int = 0):
    """Yield the journal's block records above ``from_height``, in order.

    Read-only replay-to-height for change-feed bootstrap: reads the
    newest snapshot's block list plus the WAL suffix through a fresh
    (unrepaired) scanner, touching none of the node's live recovery
    state.  Heights arrive ascending, so a consumer's height cursor can
    tail straight from the last yielded record into live flushes.
    """
    snapshot_lsn = 0
    snapshot = durability.snapshots.latest()
    if snapshot is not None:
        snapshot_lsn, snap_state = snapshot
        for record in snap_state.get("blocks", []):
            if record["h"] > from_height:
                yield deep_copy_json(record)
    wal = SegmentedWal(
        durability.disk,
        prefix=durability.wal.prefix,
        segment_max_bytes=durability.wal.segment_max_bytes,
    )
    for lsn, record in wal.scan():
        if lsn <= snapshot_lsn or record.get("k") != "block":
            continue
        if record["b"]["h"] > from_height:
            yield deep_copy_json(record["b"])
