"""Per-node durability bundle: device + WAL + group commit + snapshots.

One :class:`NodeDurability` rides along with each durable agent — a
validator node's server or a shard's 2PC coordinator — and owns its
whole persistence stack:

* the :class:`~repro.durability.wal.SimDisk` (or any backend) the agent
  writes to and recovers from;
* the :class:`~repro.durability.wal.SegmentedWal` of journal frames;
* the :class:`~repro.durability.commitlog.GroupCommitLog` batching all
  of one tick's journal records under a single sync;
* the :class:`~repro.durability.snapshot.SnapshotManager` checkpointing
  state every ``snapshot_interval`` records so recovery replays a
  bounded suffix and old segments retire.

The snapshot cadence runs off the commit log's ``after_flush`` hook —
deterministic, loop-driven, and always at a flush boundary so the
checkpoint is consistent with the synced WAL prefix it claims to cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.durability.commitlog import GroupCommitLog
from repro.durability.snapshot import SnapshotManager
from repro.durability.wal import SegmentedWal, SimDisk, StorageBackend
from repro.sim.events import EventLoop


@dataclass
class DurabilityConfig:
    """Tunables of the per-node persistence stack."""

    #: WAL segment rotation threshold (bytes).
    segment_max_bytes: int = 65536
    #: Take a checkpoint every N journal records (segment retirement
    #: follows each checkpoint).
    snapshot_interval: int = 400
    #: Simulated seconds between a batch opening and its group flush.
    flush_interval: float = 0.0
    #: Ceiling on how long an acknowledged record may sit volatile.
    max_latency: float = 0.002


class NodeDurability:
    """The persistence stack of one durable agent.

    Args:
        name: stable identifier (names the WAL prefix for debugging).
        loop: the deployment event loop (all flush timing).
        config: stack tunables.
        disk: backend override (defaults to a fresh :class:`SimDisk`).
    """

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        config: DurabilityConfig | None = None,
        disk: StorageBackend | None = None,
    ):
        self.name = name
        self.config = config or DurabilityConfig()
        self.disk = disk or SimDisk()
        self.wal = SegmentedWal(
            self.disk, segment_max_bytes=self.config.segment_max_bytes
        )
        self.log = GroupCommitLog(
            self.wal,
            loop,
            flush_interval=self.config.flush_interval,
            max_latency=self.config.max_latency,
        )
        self.log.after_flush = self._maybe_snapshot
        self.snapshots = SnapshotManager(self.disk)
        #: Provider of the full checkpoint state (set by the owner).
        self.state_provider: Callable[[], dict[str, Any]] | None = None

    # -- journaling -----------------------------------------------------------

    def journal(self, record: dict[str, Any]) -> None:
        """Append one record to the tick's group-commit batch."""
        self.log.append(record)

    def _maybe_snapshot(self) -> None:
        if self.state_provider is None:
            return
        if self.wal.appended_since_snapshot < self.config.snapshot_interval:
            return
        self.checkpoint()

    def checkpoint(self) -> int:
        """Take a snapshot now and retire covered WAL segments."""
        self.log.flush_now()
        cutoff = self.wal.last_lsn
        state = self.state_provider() if self.state_provider is not None else {}
        self.snapshots.take(state, cutoff)
        self.wal.retire(cutoff)
        return cutoff

    # -- crash / recovery plumbing -------------------------------------------

    def power_fail(self, torn_bytes: int = 0) -> None:
        """Process death: queued records vanish, the device loses its
        unsynced tail (optionally keeping ``torn_bytes`` of it — the
        torn write recovery must detect and discard)."""
        self.log.drop_queue()
        if isinstance(self.disk, SimDisk):
            self.disk.power_fail(torn_bytes)

    def reopen(self, wal: SegmentedWal) -> None:
        """Adopt the repaired WAL after recovery (appends continue from
        the last surviving LSN; the group-commit queue starts empty)."""
        self.wal = wal
        self.log.wal = wal
        self.log.drop_queue()
