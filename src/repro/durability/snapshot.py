"""Checkpoints: bound recovery replay and let the WAL compact.

A snapshot is one frame — the same length-prefixed CRC-checksummed
canonical-JSON format the WAL uses — holding a full dump of a node's
durable state (collections, applied chain, consensus lock) plus the LSN
it covers.  The write protocol is crash-safe without any atomic-rename
machinery:

1. write + sync the new snapshot file ``snap-<lsn>``;
2. only then delete older snapshots;
3. only then retire WAL segments wholly covered by ``lsn``.

A power failure between any two steps leaves either the old snapshot or
both; :meth:`SnapshotManager.latest` walks candidates newest-first and
skips any whose frame fails its checksum (a torn snapshot write), so
recovery always finds the newest *valid* checkpoint and replays the WAL
suffix from there.
"""

from __future__ import annotations

from typing import Any

from repro.durability.wal import StorageBackend, encode_frame, iter_frames


class SnapshotManager:
    """Snapshot files on the same device as the WAL they compact."""

    def __init__(self, disk: StorageBackend, prefix: str = "snap"):
        self.disk = disk
        self.prefix = prefix
        self.stats = {"taken": 0, "skipped_invalid": 0}

    def _name(self, lsn: int) -> str:
        return f"{self.prefix}-{lsn:012d}.snap"

    def _candidates(self) -> list[tuple[int, str]]:
        found = []
        marker = f"{self.prefix}-"
        for name in self.disk.list():
            if name.startswith(marker) and name.endswith(".snap"):
                try:
                    lsn = int(name[len(marker) : -5])
                except ValueError:
                    continue
                found.append((lsn, name))
        return sorted(found)

    def take(self, state: dict[str, Any], upto_lsn: int) -> str:
        """Durably write a checkpoint of ``state`` covering ``upto_lsn``.

        Older snapshots are deleted only after the new one is synced.
        Re-taking an LSN already covered by a *valid* snapshot is a
        no-op (state is a function of the journal, so the bytes would be
        equivalent); appending to it instead would grow a multi-frame
        file :meth:`latest` rejects — losing the only checkpoint after
        its WAL segments were retired.  A torn same-LSN snapshot is
        deleted and rewritten.
        """
        name = self._name(upto_lsn)
        existing = self._candidates()
        if any(found_name == name for _, found_name in existing):
            frames = list(iter_frames(self.disk.read(name)))
            if len(frames) == 1 and frames[0].get("lsn") == upto_lsn:
                return name
            self.disk.delete(name)
        self.disk.append(name, encode_frame({"lsn": upto_lsn, "state": state}))
        self.disk.sync(name)
        for _, old_name in existing:
            if old_name != name:
                self.disk.delete(old_name)
        self.stats["taken"] += 1
        return name

    def latest(self) -> tuple[int, dict[str, Any]] | None:
        """Newest snapshot whose frame validates, or None.

        Torn or corrupt snapshot files are skipped (never deleted here —
        recovery is a read path), falling back to the next older one.
        """
        for lsn, name in reversed(self._candidates()):
            frames = list(iter_frames(self.disk.read(name)))
            if len(frames) == 1 and frames[0].get("lsn") == lsn:
                return lsn, frames[0]["state"]
            self.stats["skipped_invalid"] += 1
        return None
