"""Group commit: many journal appends, one flush, one fsync.

The same amortize-per-record-into-per-batch playbook the validation
pipeline used for signatures (PR 4), applied to durability: every
journal record produced inside one event-loop tick — a whole block's
storage mutations, a 2PC decision's lock updates — rides a single WAL
flush and a single backend sync, instead of paying a sync per record
(the naive write-through that the durability benchmark shows is >3x
slower even on an in-memory device, and orders of magnitude slower on a
real disk).

Timing comes **only** from the injected event loop: the first append of
a batch schedules one flush callback ``flush_interval`` simulated
seconds ahead (0.0 = once the current event cascade drains), bounded by
``max_latency`` — the configurable ceiling on how long a record may sit
volatile.  No wall clock, no threads, no background daemons: the flush
is an ordinary deterministic event, which is what lets the chaos plane
power-fail the device *between* an append and its flush and exercise
every torn-write interleaving reproducibly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.durability.wal import SegmentedWal
from repro.sim.events import EventHandle, EventLoop

#: Callback fired once a record's frame is durably synced.
DurableCallback = Callable[[int], None]


class GroupCommitLog:
    """Batching front-end over a :class:`~repro.durability.wal.SegmentedWal`.

    Args:
        wal: the segmented log to flush into.
        loop: the deployment's event loop (all flush timing lives here).
        flush_interval: simulated seconds between a batch opening and its
            flush; 0.0 flushes once the current cascade finishes.
        max_latency: upper bound on ``flush_interval`` — the durability
            guarantee a caller can rely on ("an acknowledged record is
            on disk within ``max_latency`` simulated seconds").
    """

    def __init__(
        self,
        wal: SegmentedWal,
        loop: EventLoop,
        flush_interval: float = 0.0,
        max_latency: float = 0.002,
    ):
        self.wal = wal
        self._loop = loop
        self.flush_interval = min(flush_interval, max_latency)
        self.max_latency = max_latency
        self._queue: list[tuple[dict[str, Any], DurableCallback | None]] = []
        self._flush_handle: EventHandle | None = None
        #: Hook run after every flush (the snapshot cadence check).
        self.after_flush: Callable[[], None] | None = None
        #: Durable-record subscribers (change feeds).  Each is called with
        #: the flushed batch as ``[(lsn, record), ...]`` *after* the
        #: backend sync — a listener only ever observes records that will
        #: survive a power failure.
        self.listeners: list[Callable[[list[tuple[int, dict[str, Any]]]], None]] = []
        self.stats = {"appends": 0, "flushes": 0, "flushed_records": 0}
        #: Optional :class:`~repro.telemetry.Telemetry` (set by the cluster).
        self.telemetry = None
        self.telemetry_label = ""
        self._batch_opened_at: float | None = None
        self._tel_handles: tuple | None = None

    def _instruments(self, tel) -> tuple:
        """(batch histogram, sync-wait histogram), resolved once — the
        registry lookup is too heavy to repeat on every flush."""
        handles = self._tel_handles
        if handles is None or handles[0] is not tel or handles[1] != self.telemetry_label:
            label = self.telemetry_label
            handles = (
                tel,
                label,
                tel.histogram("wal_batch_records", node=label),
                tel.histogram("wal_sync_wait_ms", node=label),
            )
            self._tel_handles = handles
        return handles

    @property
    def pending(self) -> int:
        """Records appended but not yet flushed to the WAL."""
        return len(self._queue)

    def append(
        self, record: dict[str, Any], on_durable: DurableCallback | None = None
    ) -> None:
        """Queue ``record`` for the tick's group flush."""
        self._queue.append((record, on_durable))
        self.stats["appends"] += 1
        if self._flush_handle is None or self._flush_handle.cancelled:
            self._batch_opened_at = self._loop.clock.now
            self._flush_handle = self._loop.schedule_in(
                self.flush_interval, self._flush
            )

    def _flush(self) -> None:
        self._flush_handle = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        last_lsn = 0
        flushed: list[tuple[int, dict[str, Any]]] = []
        for record, _ in batch:
            last_lsn = self.wal.append(record)
            flushed.append((last_lsn, record))
        self.wal.sync()
        self.stats["flushes"] += 1
        self.stats["flushed_records"] += len(batch)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            handles = self._instruments(tel)
            handles[2].observe(len(batch))
            if self._batch_opened_at is not None:
                handles[3].observe(
                    (self._loop.clock.now - self._batch_opened_at) * 1000.0
                )
            # Sampled transactions get a WAL-sync lifecycle event: block
            # records carry their envelope ids, and sampled() is an O(1)
            # membership probe, so unsampled runs pay one dict miss per
            # journaled block.  With no live traces the scan is skipped
            # entirely.
            tracer = tel.tracer
            if tracer.started:
                for record, _ in batch:
                    if record.get("k") == "block":
                        for tx in record["b"]["txs"]:
                            if tracer.sampled(tx[0]):
                                tracer.event(
                                    tx[0],
                                    "wal_group_commit",
                                    node=self.telemetry_label,
                                    batch=len(batch),
                                )
        self._batch_opened_at = None
        for listener in self.listeners:
            listener(flushed)
        for _, on_durable in batch:
            if on_durable is not None:
                on_durable(last_lsn)
        if self.after_flush is not None:
            self.after_flush()

    def flush_now(self) -> None:
        """Synchronously flush whatever is queued (snapshots, shutdown)."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._flush()

    def drop_queue(self) -> None:
        """Crash path: queued-but-unflushed records die with the process."""
        self._queue.clear()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
