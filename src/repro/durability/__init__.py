"""Durability layer: segmented WAL, group commit, snapshots, recovery.

Everything a node needs to survive process death: an append-only log of
checksummed frames over a pluggable storage device (a deterministic
:class:`~repro.durability.wal.SimDisk` in simulation, real files
outside), group-commit batching so a tick's records share one sync,
periodic snapshots bounding replay, and scan-to-torn-tail recovery that
rebuilds collections, the applied chain, consensus lock state and 2PC
outbox/locks from disk alone.
"""

from repro.durability.commitlog import GroupCommitLog
from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import (
    RecoveredState,
    apply_db_op,
    block_record,
    collections_state,
    diff_databases,
    rebuild_block,
    recover,
)
from repro.durability.snapshot import SnapshotManager
from repro.durability.wal import (
    FileBackend,
    SegmentedWal,
    SimDisk,
    StorageBackend,
    decode_prefix,
    encode_frame,
    iter_frames,
    valid_prefix_length,
)

__all__ = [
    "DurabilityConfig",
    "FileBackend",
    "GroupCommitLog",
    "NodeDurability",
    "RecoveredState",
    "SegmentedWal",
    "SimDisk",
    "SnapshotManager",
    "StorageBackend",
    "apply_db_op",
    "block_record",
    "collections_state",
    "decode_prefix",
    "diff_databases",
    "encode_frame",
    "iter_frames",
    "rebuild_block",
    "recover",
    "valid_prefix_length",
]
