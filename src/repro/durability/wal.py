"""Segmented write-ahead log over a pluggable storage backend.

The log is a sequence of *frames*, each a length-prefixed,
CRC32-checksummed, canonically-encoded JSON record::

    [4B length BE][4B crc32 BE][canonical JSON payload]

Frames append to *segments* — named append-only byte files on a
:class:`StorageBackend` — and a new segment opens once the active one
passes ``segment_max_bytes``, so snapshot-driven compaction can retire
whole files instead of rewriting one unbounded log.

Two backends ship:

* :class:`SimDisk` — a deterministic in-memory device with *real crash
  semantics*: appended bytes sit in a volatile (OS page cache) buffer
  until ``sync`` makes them durable, and :meth:`SimDisk.power_fail` can
  drop the volatile tail at **any byte offset** — including mid-frame,
  the torn write every recovery path must survive.  The chaos plane
  drives it.
* :class:`FileBackend` — real files with real ``fsync``; the durability
  benchmark and any out-of-sim deployment use it.

Recovery semantics are *scan to torn tail*: :meth:`SegmentedWal.scan`
yields records until the first frame that fails its length or checksum
check, which is by construction the longest valid prefix the device
durably holds.  :meth:`SegmentedWal.repair` then truncates the torn
bytes so post-recovery appends extend the valid prefix.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterator

from repro.common.encoding import canonical_bytes, canonical_serialize

#: Bytes of frame header: 4-byte payload length + 4-byte CRC32.
FRAME_HEADER = 8


def encode_frame(record: dict[str, Any]) -> bytes:
    """One wire frame for ``record`` (canonical JSON body)."""
    payload = canonical_bytes(record)
    header = len(payload).to_bytes(4, "big") + zlib.crc32(payload).to_bytes(4, "big")
    return header + payload


def decode_prefix(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """``(frames, prefix_bytes)``: the longest valid frame prefix, once.

    A short header, a body extending past the buffer, a checksum
    mismatch or an undecodable body all terminate the walk silently:
    everything before the bad frame is the longest valid prefix,
    everything after is torn tail.  One pass serves both the decoded
    records and the byte boundary (scan and repair share it instead of
    decoding the log twice).
    """
    frames: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset + FRAME_HEADER <= total:
        length = int.from_bytes(data[offset : offset + 4], "big")
        checksum = int.from_bytes(data[offset + 4 : offset + 8], "big")
        body_end = offset + FRAME_HEADER + length
        if body_end > total:
            break  # torn tail: frame body never fully reached the device
        body = data[offset + FRAME_HEADER : body_end]
        if zlib.crc32(body) != checksum:
            break  # corrupt/torn frame: the walk must not cross it
        try:
            frames.append(json.loads(body.decode("utf-8")))
        except ValueError:
            break
        offset = body_end
    return frames, offset


def iter_frames(data: bytes) -> Iterator[dict[str, Any]]:
    """Decoded frames of the longest valid prefix (see :func:`decode_prefix`)."""
    yield from decode_prefix(data)[0]


def valid_prefix_length(data: bytes) -> int:
    """Byte length of the longest valid frame prefix of ``data``."""
    return decode_prefix(data)[1]


class StorageBackend:
    """Abstract append-only file namespace (the durability device)."""

    def append(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def sync(self, name: str) -> None:
        """Make every appended byte of ``name`` durable."""
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        """The *durable* contents of ``name`` (what survives power loss)."""
        raise NotImplementedError

    def list(self) -> list[str]:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def truncate(self, name: str, size: int) -> None:
        """Durably cut ``name`` down to ``size`` bytes (recovery repair)."""
        raise NotImplementedError


class SimDisk(StorageBackend):
    """Deterministic in-memory device with page-cache crash semantics.

    Appends land in a per-file volatile buffer; ``sync`` flushes the
    buffer into the durable image.  :meth:`power_fail` models process or
    machine death: all volatile bytes vanish, except that the *most
    recently appended* file may durably keep an arbitrary prefix of its
    volatile tail — the torn write (a partial sector made it to the
    platter before power was lost).

    Everything is plain ``bytes`` bookkeeping: byte-identical across
    runs, no wall clock, no randomness.
    """

    def __init__(self) -> None:
        self._durable: dict[str, bytearray] = {}
        self._volatile: dict[str, bytearray] = {}
        self._last_appended: str | None = None
        self.stats = {
            "appends": 0,
            "appended_bytes": 0,
            "syncs": 0,
            "synced_bytes": 0,
            "power_failures": 0,
        }

    def append(self, name: str, data: bytes) -> None:
        self._durable.setdefault(name, bytearray())
        self._volatile.setdefault(name, bytearray()).extend(data)
        self._last_appended = name
        self.stats["appends"] += 1
        self.stats["appended_bytes"] += len(data)

    def sync(self, name: str) -> None:
        self.stats["syncs"] += 1
        tail = self._volatile.get(name)
        if tail:
            self.stats["synced_bytes"] += len(tail)
            self._durable.setdefault(name, bytearray()).extend(tail)
            tail.clear()

    def sync_all(self) -> None:
        for name in list(self._volatile):
            if self._volatile[name]:
                self.sync(name)

    def read(self, name: str) -> bytes:
        return bytes(self._durable.get(name, b""))

    def list(self) -> list[str]:
        return sorted(self._durable)

    def delete(self, name: str) -> None:
        self._durable.pop(name, None)
        self._volatile.pop(name, None)

    def truncate(self, name: str, size: int) -> None:
        durable = self._durable.get(name)
        if durable is not None and len(durable) > size:
            del durable[size:]
        self._volatile.pop(name, None)

    # -- crash surface (driven by the chaos plane) ---------------------------

    def power_fail(self, torn_bytes: int = 0) -> None:
        """Drop every unsynced byte; optionally tear a partial write.

        Args:
            torn_bytes: how many leading bytes of the most recently
                appended file's volatile tail durably survive — landing
                the device mid-frame when it falls inside one.
        """
        self.stats["power_failures"] += 1
        if torn_bytes > 0 and self._last_appended is not None:
            tail = self._volatile.get(self._last_appended)
            if tail:
                survived = bytes(tail[:torn_bytes])
                self._durable.setdefault(self._last_appended, bytearray()).extend(
                    survived
                )
        for tail in self._volatile.values():
            tail.clear()

    def corrupt(self, name: str, offset: int) -> None:
        """Flip one durable byte (bit-rot / misdirected write)."""
        durable = self._durable.get(name)
        if durable is not None and 0 <= offset < len(durable):
            durable[offset] ^= 0xFF

    def clone(self) -> "SimDisk":
        """Independent copy (property tests fork one baseline image)."""
        twin = SimDisk()
        twin._durable = {name: bytearray(data) for name, data in self._durable.items()}
        twin._volatile = {
            name: bytearray(data) for name, data in self._volatile.items()
        }
        twin._last_appended = self._last_appended
        twin.stats = dict(self.stats)
        return twin

    def durable_size(self, name: str) -> int:
        return len(self._durable.get(name, b""))


class FileBackend(StorageBackend):
    """Real files under one directory, with real ``fsync`` durability."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._handles: dict[str, Any] = {}
        self.stats = {"appends": 0, "appended_bytes": 0, "syncs": 0}

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _handle(self, name: str):
        handle = self._handles.get(name)
        if handle is None:
            handle = open(self._path(name), "ab")
            self._handles[name] = handle
        return handle

    def append(self, name: str, data: bytes) -> None:
        handle = self._handle(name)
        handle.write(data)
        self.stats["appends"] += 1
        self.stats["appended_bytes"] += len(data)

    def sync(self, name: str) -> None:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())
        self.stats["syncs"] += 1

    def read(self, name: str) -> bytes:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()
        try:
            with open(self._path(name), "rb") as reader:
                return reader.read()
        except FileNotFoundError:
            return b""

    def list(self) -> list[str]:
        try:
            return sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []

    def delete(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def truncate(self, name: str, size: int) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        with open(self._path(name), "ab") as writer:
            writer.truncate(size)

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()


class SegmentedWal:
    """Append-only log of LSN-stamped records across rotating segments.

    Args:
        disk: the storage backend.
        prefix: segment file prefix (one WAL per prefix per device).
        segment_max_bytes: rotation threshold — a fresh segment opens
            once the active one's appended size passes it.
    """

    def __init__(
        self,
        disk: StorageBackend,
        prefix: str = "wal",
        segment_max_bytes: int = 65536,
    ):
        self.disk = disk
        self.prefix = prefix
        self.segment_max_bytes = segment_max_bytes
        self.next_lsn = 1
        #: LSN the latest snapshot covers (records <= it are retired).
        self.snapshot_lsn = 0
        #: Segment names in LSN order, with their first LSNs.
        self._segments: list[tuple[int, str]] = self._discover()
        #: Appended-but-possibly-unsynced segment names.
        self._dirty: set[str] = set()
        #: Appended bytes of the active segment (durable + volatile).
        self._active_size = 0
        if self._segments:
            self._active_size = len(self.disk.read(self._segments[-1][1]))
        self.stats = {"records": 0, "rotations": 0, "retired_segments": 0}

    # -- segment bookkeeping --------------------------------------------------

    def _segment_name(self, first_lsn: int) -> str:
        return f"{self.prefix}-{first_lsn:012d}.seg"

    def _discover(self) -> list[tuple[int, str]]:
        found = []
        marker = f"{self.prefix}-"
        for name in self.disk.list():
            if name.startswith(marker) and name.endswith(".seg"):
                try:
                    first_lsn = int(name[len(marker) : -4])
                except ValueError:
                    continue
                found.append((first_lsn, name))
        return sorted(found)

    def segments(self) -> list[str]:
        return [name for _, name in self._segments]

    @property
    def last_lsn(self) -> int:
        return self.next_lsn - 1

    @property
    def appended_since_snapshot(self) -> int:
        return self.last_lsn - self.snapshot_lsn

    # -- writing --------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Stamp ``record`` with the next LSN and append its frame.

        The bytes are *not* durable until :meth:`sync` — the group-commit
        layer batches many appends under one sync.
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        frame = encode_frame({"lsn": lsn, "rec": record})
        if not self._segments or self._active_size >= self.segment_max_bytes:
            name = self._segment_name(lsn)
            self._segments.append((lsn, name))
            self._active_size = 0
            if len(self._segments) > 1:
                self.stats["rotations"] += 1
        name = self._segments[-1][1]
        self.disk.append(name, frame)
        self._dirty.add(name)
        self._active_size += len(frame)
        self.stats["records"] += 1
        return lsn

    def sync(self) -> None:
        """Make every appended frame durable (one backend sync per dirty
        segment — normally exactly one)."""
        for name in sorted(self._dirty):
            self.disk.sync(name)
        self._dirty.clear()

    # -- reading / recovery ---------------------------------------------------

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(lsn, record)`` over the durable longest valid prefix.

        The scan stops at the first invalid frame *and never resumes*:
        a torn or corrupt frame in segment k invalidates segment k's
        tail and every later segment (their records are not a prefix).
        """
        for index, (_, name) in enumerate(self._segments):
            data = self.disk.read(name)
            frames, prefix = decode_prefix(data)
            for frame in frames:
                yield frame["lsn"], frame["rec"]
            if prefix < len(data) or self._torn_rotation(index, frames):
                return

    def _torn_rotation(self, index: int, frames: list[dict[str, Any]]) -> bool:
        """True when a later segment exists but this one ended torn-free
        while losing its tail to a power failure (detected by the next
        segment's first LSN not following on)."""
        if index + 1 >= len(self._segments):
            return False
        if not frames:
            return True
        return frames[-1]["lsn"] + 1 != self._segments[index + 1][0]

    def repair(self) -> int:
        """Truncate torn bytes so appends extend the valid prefix.

        Returns the LSN of the last surviving record and primes
        ``next_lsn`` after it.  Segments past a torn frame are deleted
        outright — their contents are beyond the valid prefix.
        """
        last_lsn = 0
        keep = 0
        for index, (_, name) in enumerate(self._segments):
            data = self.disk.read(name)
            frames, prefix = decode_prefix(data)
            if frames:
                last_lsn = frames[-1]["lsn"]
            if prefix < len(data):
                self.disk.truncate(name, prefix)
                keep = index + 1 if prefix > 0 else index
                break
            if self._torn_rotation(index, frames):
                keep = index + 1
                break
            keep = index + 1
        for _, name in self._segments[keep:]:
            self.disk.delete(name)
        self._segments = self._segments[:keep]
        self._dirty.clear()
        self._active_size = (
            len(self.disk.read(self._segments[-1][1])) if self._segments else 0
        )
        self.next_lsn = last_lsn + 1
        return last_lsn

    # -- compaction -----------------------------------------------------------

    def retire(self, cutoff_lsn: int) -> int:
        """Delete segments wholly covered by a snapshot at ``cutoff_lsn``.

        A segment may go once the *next* segment already starts at or
        before the first LSN still needed (``cutoff_lsn + 1``).
        """
        self.snapshot_lsn = max(self.snapshot_lsn, cutoff_lsn)
        retired = 0
        while len(self._segments) > 1 and self._segments[1][0] <= cutoff_lsn + 1:
            _, name = self._segments.pop(0)
            self.disk.delete(name)
            self._dirty.discard(name)
            retired += 1
        self.stats["retired_segments"] += retired
        return retired

    def describe(self) -> str:
        return canonical_serialize(
            {
                "segments": self.segments(),
                "next_lsn": self.next_lsn,
                "snapshot_lsn": self.snapshot_lsn,
            }
        )
