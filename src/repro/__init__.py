"""SmartchainDB reproduction: declarative blockchain transactions.

Reproduction of "Taming the Beast of User-Programmed Transactions on
Blockchains: A Declarative Transaction Approach" (EDBT 2025).

Public API highlights:

* :class:`repro.core.SmartchainCluster` — a full declarative-transaction
  deployment (servers + Tendermint + storage) on a simulated network.
* :class:`repro.core.Driver` — prepare/sign/submit per-type templates.
* :class:`repro.ethereum.QuorumChain` / :class:`repro.ethereum.Web3Client`
  — the Ethereum smart-contract baseline.
* :mod:`repro.workloads` — the paper's synthetic workload and the
  scenario runners behind every figure.
"""

from repro.analytics import FraudAnalyzer, MarketplaceAnalytics
from repro.core import (
    ClusterConfig,
    Driver,
    SmartchainCluster,
    SmartchainServer,
    Transaction,
    TransactionValidator,
)
from repro.crypto import KeyPair, ReservedAccounts, generate_keypair, keypair_from_string
from repro.ethereum import QuorumChain, QuorumChainConfig, Web3Client
from repro.workloads import ScenarioSpec, run_eth_scenario, run_scdb_scenario

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "Driver",
    "FraudAnalyzer",
    "MarketplaceAnalytics",
    "KeyPair",
    "QuorumChain",
    "QuorumChainConfig",
    "ReservedAccounts",
    "ScenarioSpec",
    "SmartchainCluster",
    "SmartchainServer",
    "Transaction",
    "TransactionValidator",
    "Web3Client",
    "__version__",
    "generate_keypair",
    "keypair_from_string",
    "run_eth_scenario",
    "run_scdb_scenario",
]
