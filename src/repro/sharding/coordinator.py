"""Two-phase commit across shards.

One :class:`TwoPhaseCoordinator` agent runs per shard, playing both 2PC
roles:

* **coordinator** for cross-shard transactions *homed* on its shard —
  it prepares remote input locks, drives the home BFT commit, then
  broadcasts the commit/abort decision;
* **participant** (resource manager) for remote coordinators — it locks
  locally-held UTXOs at prepare, makes the lock visible to local
  validation through the cluster's spend guard, and consumes or releases
  the lock when the decision arrives.

The protocol per cross-shard transaction ``T`` homed on ``H``:

1. ``H`` durably records intent in its ``shard_outbox`` (state
   ``preparing``) and sends PREPARE for the refs each remote shard holds.
2. Each participant verifies the ref is committed, unspent and unlocked,
   writes a durable ``prepared`` row in its ``shard_locks`` table (from
   that instant local validation rejects competing spends), and votes
   YES, shipping the referenced payloads so ``H`` can validate ``T``.
3. On unanimous YES, ``H`` imports the shipped payloads, flips the
   outbox to ``commit_pending`` and submits ``T`` to its own BFT group —
   the home chain is the commit point.
4. When ``T`` commits (or is rejected) there, ``H`` records the outcome
   and broadcasts COMMIT/ABORT; participants turn prepared locks into
   permanent ``committed`` tombstones and drop the spent UTXO, or delete
   the locks, and acknowledge.

All messages and timers run on the shared simulated event loop, so
:mod:`repro.sim.failures` schedules can kill either side mid-protocol.
Crash recovery preserves atomicity:

* coordinator crash with state ``preparing`` → presumed abort (no home
  submit happened yet);
* crash with ``commit_pending`` → the home chain is consulted: committed
  → COMMIT is (re)broadcast, rejected → ABORT, in flight → the pending
  commit callback resolves it;
* decided-but-unacknowledged outcomes are re-broadcast on recovery; a
  participant re-inquires about stale ``prepared`` locks on a timer and
  after its own recovery — so no UTXO stays locked once both sides are
  eventually up, and a lock is only ever consumed by the one transaction
  the home chain actually committed.

Message loss is bounded-retried; when retries exhaust while the other
side is down, the state parks durably and the next recovery (either
side) resumes it — keeping the event loop finite for ``run_until_idle``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.encoding import deep_copy_json
from repro.common.errors import ValidationError
from repro.core.cluster import SmartchainCluster
from repro.core.transaction import OutputRef
from repro.durability.node import NodeDurability
from repro.durability.recovery import collections_state, recover
from repro.sharding.router import RoutingDecision
from repro.sim.events import EventLoop
from repro.storage.database import SMARTCHAINDB_LAYOUT, Database

#: Pseudo-node id the coordinator occupies in its shard's failure domain.
COORDINATOR_NODE = "coordinator"

#: Outcome callback the owning facade registers:
#: (tx_id, "committed" | "aborted", reason_or_None).
OutcomeCallback = Callable[[str, str, "str | None"], None]

#: Phase listener: (shard_id, phase, tx_id).  Phases a listener observes,
#: in protocol order on the coordinator side — ``begin``,
#: ``commit_pending``, ``decided:committed`` / ``decided:aborted``,
#: ``done`` — and on the participant side — ``prepared``,
#: ``vote_refused``, ``decision_applied``, ``inquiry``.  The chaos
#: harness uses these to crash an agent at an exact protocol phase.
PhaseListener = Callable[[str, str, str], None]


@dataclass
class CoordinatorConfig:
    """Timing knobs of the cross-shard protocol (simulated seconds)."""

    #: One-way latency of coordinator <-> participant messages.
    inter_shard_delay: float = 0.005
    #: How long the coordinator waits for prepare votes before aborting.
    prepare_timeout: float = 1.0
    #: How long a participant holds a prepared lock before inquiring.
    lock_timeout: float = 2.0
    #: Spacing between decision re-broadcasts / repeated inquiries.
    retry_interval: float = 0.5
    #: Bounded retries; beyond them the state parks until a recovery.
    max_retries: int = 8


class TwoPhaseCoordinator:
    """Per-shard 2PC agent (coordinator + participant roles).

    Args:
        shard_id: the shard this agent serves.
        cluster: that shard's BFT cluster (home commits, UTXO views).
        loop: the deployment-wide event loop.
        peer_lookup: resolves a shard id to its agent.
        on_outcome: facade callback fired exactly once per home
            cross-shard transaction with the final outcome.
        config: protocol timings.
    """

    def __init__(
        self,
        shard_id: str,
        cluster: SmartchainCluster,
        loop: EventLoop,
        peer_lookup: Callable[[str], "TwoPhaseCoordinator"],
        on_outcome: OutcomeCallback,
        config: CoordinatorConfig | None = None,
        durability: NodeDurability | None = None,
    ):
        self.shard_id = shard_id
        self.cluster = cluster
        self.config = config or CoordinatorConfig()
        self._loop = loop
        self._peer = peer_lookup
        self._on_outcome = on_outcome
        self.crashed = False
        #: Optional persistence stack: when set, the outbox/locks tables
        #: journal through its group-commit WAL and the agent can be
        #: rebuilt purely from disk (:meth:`restart_from_disk`).
        self.durability = durability
        #: Durable agent state: survives crashes, like any node database.
        self.durable = self._make_durable_database()
        if durability is not None:
            durability.state_provider = self._checkpoint_state
        # Volatile protocol state (lost on crash, rebuilt from durable).
        self._votes: dict[str, dict[str, bool]] = {}
        self._vote_payloads: dict[str, list[dict[str, Any]]] = {}
        self._acks: dict[str, set[str]] = {}
        self._timers: dict[tuple[str, str], Any] = {}
        self._epoch = 0
        #: Per-target outbound message queue: every message enqueued for a
        #: peer within one event-loop tick rides one wire delivery (see
        #: :meth:`_send`).
        self._outgoing: dict[str, list[tuple[str, tuple]]] = {}
        #: Observers of protocol-phase transitions (see PhaseListener).
        #: Listeners must not mutate the agent synchronously; schedule
        #: faults through the event loop instead.
        self.phase_listeners: list[PhaseListener] = []
        #: Migration fences (installed by the reshard controller): each
        #: maps an OutputRef to a ``redirect:*`` verdict while the ref's
        #: key range is draining toward a cutover, or None.  Consulted
        #: before the lock table so migrating outputs refuse new spends
        #: — admissions, pool entries and 2PC prepares alike.
        self.migration_guards: list[Callable[[OutputRef], str | None]] = []
        self.stats = {
            "coordinated": 0,
            "committed": 0,
            "aborted": 0,
            "locks_granted": 0,
            "locks_refused": 0,
            "inquiries": 0,
        }
        #: Optional :class:`~repro.telemetry.Telemetry` (set by the facade).
        self.telemetry = None
        #: Coordinator-side phase clocks: tx_id -> {phase: started_at}.
        self._phase_started: dict[str, dict[str, float]] = {}
        # Remote prepared locks must be visible to this shard's own
        # validation path — the commit/lock hook the cluster exposes.
        cluster.add_spend_guard(self._spend_guard)
        cluster.failures.register_callbacks(
            COORDINATOR_NODE, on_crash=self.on_crash, on_recover=self.on_recover
        )

    # -- plumbing ---------------------------------------------------------------

    def _make_durable_database(self, journaled: bool = True) -> Database:
        """The agent's lock/outbox database, WAL-backed when durable.

        ``journaled=False`` builds the empty layout for recovery replay
        (which must not re-journal what it replays).
        """
        wal = (
            self.durability.log
            if journaled and self.durability is not None
            else None
        )
        database = Database(f"shard-agent-{self.shard_id}", wal=wal)
        for name in ("shard_locks", "shard_outbox", "shard_migrations"):
            collection = database.create_collection(name)
            for path, unique in SMARTCHAINDB_LAYOUT[name]:
                collection.create_index(path, unique=unique)
        return database

    def _checkpoint_state(self) -> dict[str, Any]:
        return {"collections": collections_state(self.durable)}

    def _force(self) -> None:
        """2PC force-write point: flush the journal *now*.

        Presumed abort is only sound if certain records hit the disk
        before their messages hit the wire — a participant's prepared
        lock before its YES vote (a lock lost to a torn write after the
        vote escaped would let the UTXO be respent locally while the
        home chain commits the remote spend), and the coordinator's
        state transitions before the actions they license.  Everything
        else rides the normal group-commit cadence.
        """
        if self.durability is not None:
            self.durability.log.flush_now()

    @property
    def _outbox(self):
        return self.durable.collection("shard_outbox")

    @property
    def _locks(self):
        return self.durable.collection("shard_locks")

    def _notify(self, phase: str, tx_id: str) -> None:
        tel = self.telemetry
        if tel is not None and tel.enabled:
            self._observe_phase(tel, phase, tx_id)
        for listener in self.phase_listeners:
            listener(self.shard_id, phase, tx_id)

    def _observe_phase(self, tel, phase: str, tx_id: str) -> None:
        """Phase-latency histograms, flight-recorder and trace events.

        Coordinator-side phases bracket the protocol: ``begin`` opens the
        prepare clock, ``commit_pending`` closes it (2pc_prepare_ms) and
        opens the decision clock, ``decided:*`` closes that
        (2pc_decide_ms), ``done`` closes the end-to-end clock
        (2pc_total_ms).  Timeout aborts skip ``commit_pending``, so the
        decision clock falls back to the begin timestamp.
        """
        now = self._loop.clock.now
        tel.flight.record(now, f"2pc/{self.shard_id}", phase, tx_id=tx_id)
        if tel.tracer.sampled(tx_id):
            tel.tracer.event(tx_id, f"2pc_{phase}", node=self.shard_id)
        if phase == "begin":
            self._phase_started[tx_id] = {"begin": now}
            return
        clocks = self._phase_started.get(tx_id)
        if clocks is None:
            return  # participant-side phase, or a pre-telemetry record
        if phase == "commit_pending":
            tel.observe_ms(
                "2pc_prepare_ms", now - clocks["begin"], shard=self.shard_id
            )
            clocks["commit_pending"] = now
        elif phase.startswith("decided:"):
            opened = clocks.get("commit_pending", clocks["begin"])
            tel.observe_ms("2pc_decide_ms", now - opened, shard=self.shard_id)
            tel.counter(
                "2pc_decisions", shard=self.shard_id, outcome=phase.split(":", 1)[1]
            ).inc()
        elif phase == "done":
            tel.observe_ms(
                "2pc_total_ms", now - clocks["begin"], shard=self.shard_id
            )
            self._phase_started.pop(tx_id, None)

    def _send(self, target_shard: str, method: str, *args: Any) -> None:
        """Queue ``method(*args)`` for the target agent.

        Messages to the same peer enqueued within one event-loop tick are
        coalesced into a single wire delivery (PREPAREs for every ref of a
        batch of transactions, the decision fan-out after a block commit)
        — per-message cost becomes per-batch cost, and the receiver can
        group-apply what arrives together.  The batch leaves at the tick
        it was opened and arrives one inter-shard latency later; dropped
        if the target is down on arrival.
        """
        queue = self._outgoing.setdefault(target_shard, [])
        queue.append((method, args))
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.gauge(
                "2pc_outbox_depth", shard=self.shard_id, peer=target_shard
            ).set(len(queue))
        if len(queue) == 1:
            # First message this tick: close the batch once the current
            # event cascade (same simulated instant) has drained.
            self._loop.schedule_in(0.0, lambda: self._dispatch_batch(target_shard))

    def _dispatch_batch(self, target_shard: str) -> None:
        """Put one tick's worth of messages for a peer on the wire."""
        batch = self._outgoing.pop(target_shard, None)
        if not batch:
            return
        target = self._peer(target_shard)
        self._loop.schedule_in(
            self.config.inter_shard_delay, lambda: target._deliver_batch(batch)
        )

    def _deliver_batch(self, batch: list[tuple[str, tuple]]) -> None:
        """Arrival of one coalesced wire delivery.

        Messages dispatch strictly in send order — a decision releasing a
        lock must land before a prepare contending for it, exactly as
        with unbatched delivery.  Only the decisions' UTXO retirements
        are deferred and group-committed in one pass at the end; that is
        order-safe because a later prepare's conflict check consults the
        lock table (already updated in order), not the UTXO documents.
        """
        if self.crashed:
            return  # the whole batch is lost at a crashed agent
        committed_refs: list[tuple[str, int]] = []
        for method, args in batch:
            if method == "handle_decision":
                self._apply_decision(*args, committed_refs=committed_refs)
            else:
                getattr(self, method)(*args)
        if committed_refs:
            self.cluster.consume_outputs(committed_refs)

    def _arm(self, kind: str, tx_id: str, delay: float, callback: Callable[[], None]) -> None:
        """Volatile named timer: dies with the arming epoch and must be
        cancelled (:meth:`_disarm`) once its protocol step resolves —
        a dangling timeout would otherwise stretch ``run_until_idle``
        past it and distort every simulated-time measurement."""
        self._disarm(kind, tx_id)
        epoch = self._epoch

        def fire() -> None:
            self._timers.pop((kind, tx_id), None)
            if self.crashed or self._epoch != epoch:
                return
            callback()

        self._timers[(kind, tx_id)] = self._loop.schedule_in(delay, fire)

    def _disarm(self, kind: str, tx_id: str) -> None:
        handle = self._timers.pop((kind, tx_id), None)
        if handle is not None:
            handle.cancel()

    def _spend_guard(self, ref: OutputRef) -> str | None:
        """Local validation oracle: who holds/spent this output remotely.

        Verdict precedence: an active migration fence (the output is
        draining toward a cutover), then the durable moved-out registry
        (the output's ownership left this shard at a past cutover), then
        the 2PC lock table.  Redirect verdicts start with the 8-char
        ``redirect`` marker so even the truncated spender rendering of a
        DoubleSpendError keeps enough for the driver's retry path.
        """
        for guard in self.migration_guards:
            verdict = guard(ref)
            if verdict is not None:
                return verdict
        moved = self.durable.collection("shard_migrations").find_one(
            {
                "transaction_id": ref.transaction_id,
                "output_index": ref.output_index,
                "direction": "out",
            },
            copy=False,
        )
        if moved is not None:
            return f"redirect:moved:{moved['peer']}"
        lock = self._locks.find_one(
            {"transaction_id": ref.transaction_id, "output_index": ref.output_index},
            copy=False,
        )
        if lock is None:
            return None
        return f"shard-lock:{lock['holder']}"

    def _any_server(self):
        try:
            return self.cluster.any_server()
        except ValidationError:
            return None

    # -- coordinator role -------------------------------------------------------

    def begin(self, payload: dict[str, Any], decision: RoutingDecision) -> None:
        """Start 2PC for a cross-shard transaction homed on this shard.

        Re-beginning after an abort is a legitimate client retry: the
        terminal outbox row is replaced.  A begin for a transaction that
        is still in flight (or already committed) is a no-op.
        """
        tx_id = payload["id"]
        existing = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if existing is not None:
            if existing["outcome"] != "aborted":
                return  # in flight or already committed: nothing to do
            self._outbox.delete_many({"tx_id": tx_id})
            # Round state from the aborted attempt must not leak into
            # the retry: a stale decision-broadcast timer seeing the old
            # round's complete ack set would mark the fresh record done
            # before any participant is even prepared (found by the
            # byzantine chaos sweep, seed 16).
            self._acks.pop(tx_id, None)
            self._disarm("retry", tx_id)
        participants = {
            shard: [[ref.transaction_id, ref.output_index] for ref in refs]
            for shard, refs in decision.input_shards.items()
            if shard != self.shard_id
        }
        self._outbox.insert_one(
            {
                "tx_id": tx_id,
                "payload": payload,
                "home": self.shard_id,
                "participants": participants,
                "state": "preparing",
                "outcome": None,
                "reason": None,
            }
        )
        self.stats["coordinated"] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("2pc_begun", shard=self.shard_id).inc()
            tel.histogram("2pc_fanout", shard=self.shard_id).observe(
                len(participants)
            )
        self._notify("begin", tx_id)
        self._votes[tx_id] = {}
        self._vote_payloads[tx_id] = []
        for shard, refs in participants.items():
            self._send(shard, "handle_prepare", self.shard_id, tx_id, refs)
        self._arm(
            "prepare", tx_id, self.config.prepare_timeout,
            lambda: self._prepare_timed_out(tx_id),
        )

    def _prepare_timed_out(self, tx_id: str) -> None:
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is not None and doc["state"] == "preparing":
            self._decide(tx_id, "aborted", "prepare timeout")

    def handle_vote(
        self, tx_id: str, voter_shard: str, ok: bool, detail: Any
    ) -> None:
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is None or doc["state"] != "preparing":
            # Decision already taken (e.g. timeout abort, broadcast to
            # every participant) — a straggling vote changes nothing.
            return
        votes = self._votes.setdefault(tx_id, {})
        votes[voter_shard] = ok
        if not ok:
            self._decide(tx_id, "aborted", f"participant {voter_shard}: {detail}")
            return
        self._vote_payloads.setdefault(tx_id, []).extend(detail)
        if set(votes) == set(doc["participants"]):
            # Unanimous YES: ship the foreign payloads so home validation
            # can resolve the remote inputs, record intent durably, then
            # let the home chain be the commit point.
            self.cluster.import_reference_payloads(self._vote_payloads.pop(tx_id, []))
            self._outbox.update_many(
                {"tx_id": tx_id}, {"$set": {"state": "commit_pending"}}
            )
            # Forced: were the flip torn away after the home submit went
            # out, recovery would presume abort while the home chain
            # commits — the split-brain presumed abort cannot survive.
            self._force()
            self._notify("commit_pending", tx_id)
            self._submit_home(tx_id, doc["payload"])

    def _submit_home(self, tx_id: str, payload: dict[str, Any]) -> None:
        result = self.cluster.submit_payload(
            payload,
            callback=lambda status, detail: self._home_settled(tx_id, status, detail),
        )
        if not result.accepted:
            # Admission failed outright (e.g. every home validator is
            # down) — the callback will never fire, so abort here or the
            # participants' prepared locks would be held forever.
            self._home_settled(tx_id, "rejected", result.error or "home admission failed")

    def _home_settled(self, tx_id: str, status: str, detail: Any) -> None:
        if self.crashed:
            return  # recovery re-resolves from the home chain
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is None or doc["state"] != "commit_pending":
            return
        if status == "committed":
            self._decide(tx_id, "committed", None)
        else:
            self._decide(tx_id, "aborted", f"home rejection: {detail}")

    def _decide(self, tx_id: str, outcome: str, reason: str | None) -> None:
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is None or doc["state"] in ("committed", "aborted", "done"):
            return
        self._outbox.update_many(
            {"tx_id": tx_id},
            {"$set": {"state": outcome, "outcome": outcome, "reason": reason}},
        )
        self._force()  # decided-before-broadcast, the classic 2PC force point
        self._disarm("prepare", tx_id)
        self._votes.pop(tx_id, None)
        self._vote_payloads.pop(tx_id, None)
        self._acks.setdefault(tx_id, set())
        self.stats["committed" if outcome == "committed" else "aborted"] += 1
        self._notify(f"decided:{outcome}", tx_id)
        # Committed outcomes hand the payload to the facade callback so a
        # driver client sees the same ("committed", payload) contract a
        # single cluster gives it.
        self._on_outcome(
            tx_id, outcome, doc["payload"] if outcome == "committed" else reason
        )
        self._broadcast_decision(tx_id, outcome, attempt=0)

    def _broadcast_decision(self, tx_id: str, outcome: str, attempt: int) -> None:
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is None or doc["state"] == "done" or doc["outcome"] != outcome:
            # Gone, finished, or the record no longer carries the
            # decision this broadcast was armed for (a client re-begin
            # replaced an aborted row) — a stale retry must not touch
            # the new round.
            return
        acked = self._acks.setdefault(tx_id, set())
        pending = [shard for shard in doc["participants"] if shard not in acked]
        if not pending:
            self._outbox.update_many({"tx_id": tx_id}, {"$set": {"state": "done"}})
            self._disarm("retry", tx_id)
            self._notify("done", tx_id)
            return
        for shard in pending:
            self._send(shard, "handle_decision", self.shard_id, tx_id, outcome)
        if attempt < self.config.max_retries:
            self._arm(
                "retry", tx_id, self.config.retry_interval,
                lambda: self._broadcast_decision(tx_id, outcome, attempt + 1),
            )
        # Retries exhausted: park; the participant's recovery inquiry or
        # this coordinator's own recovery re-broadcast finishes the job.

    def handle_ack(self, tx_id: str, participant_shard: str) -> None:
        acked = self._acks.setdefault(tx_id, set())
        acked.add(participant_shard)
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if (
            doc is not None
            and doc["state"] in ("committed", "aborted")
            and set(doc["participants"]) <= acked
        ):
            self._outbox.update_many({"tx_id": tx_id}, {"$set": {"state": "done"}})
            self._disarm("retry", tx_id)
            self._notify("done", tx_id)

    def handle_inquiry(self, participant_shard: str, tx_id: str) -> None:
        """Participant termination protocol: answer with any final outcome."""
        self.stats["inquiries"] += 1
        self._notify("inquiry", tx_id)
        doc = self._outbox.find_one({"tx_id": tx_id}, copy=False)
        if doc is None:
            # No durable intent: this coordinator never began (or the
            # record predates it) — presumed abort.
            self._send(participant_shard, "handle_decision", self.shard_id, tx_id, "aborted")
            return
        if doc["outcome"] is not None:
            self._send(
                participant_shard, "handle_decision", self.shard_id, tx_id, doc["outcome"]
            )
        # Still preparing / commit_pending: stay silent — the decision
        # broadcast will reach the participant when it is taken.

    # -- participant role -------------------------------------------------------

    def handle_prepare(
        self, coordinator_shard: str, tx_id: str, refs: list[list]
    ) -> None:
        """Lock locally-held UTXOs for a remote transaction, or vote no."""
        resolved = [OutputRef(item[0], int(item[1])) for item in refs]
        server = self._any_server()
        reason: str | None = None
        payloads: list[dict[str, Any]] = []
        if server is None:
            reason = "no live node to read shard state"
        else:
            utxos = server.database.collection("utxos")
            for ref in resolved:
                holder = self._spend_guard(ref)
                if holder is not None:
                    reason = f"{ref.transaction_id[:8]}:{ref.output_index} held by {holder}"
                    break
                prior = server.get_transaction(ref.transaction_id)
                if prior is None:
                    reason = f"{ref.transaction_id[:8]} not committed on {self.shard_id}"
                    break
                if (
                    utxos.find_one(
                        {
                            "transaction_id": ref.transaction_id,
                            "output_index": ref.output_index,
                        },
                        copy=False,
                    )
                    is None
                ):
                    reason = f"{ref.transaction_id[:8]}:{ref.output_index} already spent"
                    break
                rival = self.cluster.inflight_spender(ref)
                if rival == tx_id:
                    # A pooled copy of the *same* transaction (e.g. an
                    # adversarial double-submit of the cross-shard tx
                    # itself) is not a rival: granting the lock lets 2PC
                    # commit, and the pooled duplicate is then rejected
                    # deterministically against committed state.
                    rival = None
                if rival is not None:
                    # A pooled local spend is already racing for this
                    # output.  Delivery judges blocks on committed state
                    # alone (no lock-table reads), so granting the lock
                    # would not stop the rival's commit — vote no and
                    # let presumed abort release the coordinator.
                    reason = (
                        f"{ref.transaction_id[:8]}:{ref.output_index} contended "
                        f"by pooled rival {rival[:8]}"
                    )
                    break
                payloads.append(deep_copy_json(prior))
        if reason is not None:
            self.stats["locks_refused"] += 1
            self._notify("vote_refused", tx_id)
            self._send(coordinator_shard, "handle_vote", tx_id, self.shard_id, False, reason)
            return
        now = self._loop.clock.now
        # One group-committed write for the transaction's whole lock set.
        self._locks.insert_many(
            [
                {
                    "transaction_id": ref.transaction_id,
                    "output_index": ref.output_index,
                    "holder": tx_id,
                    "coordinator": coordinator_shard,
                    "status": "prepared",
                    "locked_at": now,
                }
                for ref in resolved
            ]
        )
        self.stats["locks_granted"] += len(resolved)
        self._force()  # the prepared lock must outlive any crash the YES vote outruns
        self._notify("prepared", tx_id)
        self._arm(
            "lock", tx_id, self.config.lock_timeout,
            lambda: self._inquire(tx_id, coordinator_shard, 0),
        )
        self._send(coordinator_shard, "handle_vote", tx_id, self.shard_id, True, payloads)

    def handle_decision(self, coordinator_shard: str, tx_id: str, outcome: str) -> None:
        """Apply a coordinator decision to this shard's locks (idempotent)."""
        committed_refs: list[tuple[str, int]] = []
        self._apply_decision(coordinator_shard, tx_id, outcome, committed_refs=committed_refs)
        if committed_refs:
            self.cluster.consume_outputs(committed_refs)

    def _apply_decision(
        self,
        coordinator_shard: str,
        tx_id: str,
        outcome: str,
        committed_refs: list[tuple[str, int]],
    ) -> None:
        """Apply one decision to the lock table, deferring UTXO retirement.

        Committed spends append their refs to ``committed_refs`` so the
        caller can retire a whole wire batch's UTXOs in one
        :meth:`~repro.core.cluster.SmartchainCluster.consume_outputs`
        pass (the group-commit write); the acks ride one return delivery
        per coordinator shard thanks to :meth:`_send`'s coalescing.
        """
        prepared = self._locks.find({"holder": tx_id, "status": "prepared"})
        if outcome == "committed":
            refs = [(lock["transaction_id"], lock["output_index"]) for lock in prepared]
            if refs:
                # The spend is decided on the home chain: retire the
                # UTXO and keep the lock as a permanent spent tombstone.
                committed_refs.extend(refs)
                self._locks.update_many(
                    {"holder": tx_id, "status": "prepared"},
                    {"$set": {"status": "committed"}},
                )
        else:
            self._locks.delete_many({"holder": tx_id, "status": "prepared"})
        self._disarm("lock", tx_id)
        self._notify("decision_applied", tx_id)
        self._send(coordinator_shard, "handle_ack", tx_id, self.shard_id)

    def _inquire(self, tx_id: str, coordinator_shard: str, attempt: int) -> None:
        still_held = self._locks.find_one(
            {"holder": tx_id, "status": "prepared"}, copy=False
        )
        if still_held is None:
            return  # decision arrived meanwhile
        self._send(coordinator_shard, "handle_inquiry", self.shard_id, tx_id)
        if attempt < self.config.max_retries:
            self._arm(
                "lock", tx_id, self.config.retry_interval,
                lambda: self._inquire(tx_id, coordinator_shard, attempt + 1),
            )
        # Else park: resolved when either side recovers.

    # -- crash / recovery -------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile protocol state dies; durable outbox/locks survive."""
        self.crashed = True
        self._epoch += 1
        self._votes.clear()
        self._vote_payloads.clear()
        self._acks.clear()
        self._phase_started.clear()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    def on_recover(self) -> None:
        """Crash recovery: flip the liveness flag and resume from durable
        state."""
        self.crashed = False
        self._epoch += 1
        self.resume()

    def restart_from_disk(self, torn_bytes: int = 0) -> None:
        """Kill the agent, discard its memory, rebuild from its disk.

        The abstract model kept ``self.durable`` alive across crashes;
        here it is genuinely rebuilt from snapshot + WAL suffix after the
        device loses its unsynced tail (optionally keeping ``torn_bytes``
        as a torn write).

        Ordering is load-bearing — this is the restart bug the chaos
        harness's crash-restart family exists to catch: the recovered
        database must be swapped in *before* the recovery callback runs,
        and timers must be re-armed by ``resume()`` *after* the epoch
        advances.  Rebuilding the tables without re-running resume leaves
        every in-flight cross-shard transaction with prepared locks and
        no inquiry timer — presumed-abort then stalls until some other
        agent happens to poke this one
        (``tests/sharding/test_coordinator_timers.py`` pins the fix).

        Raises:
            ValidationError: if the agent was built without durability.
        """
        if self.durability is None:
            raise ValidationError(
                f"2PC agent for {self.shard_id} has no durability stack"
            )
        if not self.crashed:
            # Fires on_crash: epoch bump, volatile wipe, timer cancel.
            self.cluster.failures.crash_now(COORDINATOR_NODE)
        self.durability.power_fail(torn_bytes)
        recovered = recover(
            self.durability, lambda: self._make_durable_database(journaled=False)
        )
        recovered.database.attach_wal(self.durability.log)
        self.durable = recovered.database
        # recover_now -> on_recover: crashed=False, epoch++, resume() —
        # which re-broadcasts decided outcomes and re-arms the inquiry
        # timers for every lock the disk says is still prepared.
        self.cluster.failures.recover_now(COORDINATOR_NODE)

    def resume(self) -> None:
        """Drive every unfinished protocol instance from durable state.

        Safe to call on a live agent: decided states re-broadcast,
        prepared locks re-inquire, terminal ones are left alone, and a
        still-``preparing`` record is presumed-aborted — a safety-
        preserving choice, so only call this once in-flight votes have
        drained (recovery after a crash, or a quiesce after the loop
        idles).  Operators — and the chaos harness's quiesce step — use
        it directly when parked state must make progress without a
        crash, e.g. after a long partition exhausted the bounded retries.
        """
        # Coordinator side: drive each outbox record to completion.
        for doc in self._outbox.find({}):
            tx_id, state = doc["tx_id"], doc["state"]
            if state == "preparing":
                # No home submit happened yet — presumed abort releases
                # any remote locks granted before the crash.
                self._decide(tx_id, "aborted", "presumed abort: prepare unresolved at resume")
            elif state == "commit_pending":
                self._resolve_commit_pending(tx_id, doc)
            elif state in ("committed", "aborted"):
                self._broadcast_decision(tx_id, state, attempt=0)
        # Participant side: chase a decision for every lock still prepared.
        chased: set[tuple[str, str]] = set()
        for lock in self._locks.find({"status": "prepared"}, copy=False):
            chased.add((lock["holder"], lock["coordinator"]))
        for holder, coordinator_shard in sorted(chased):
            self._inquire(holder, coordinator_shard, 0)

    def _resolve_commit_pending(self, tx_id: str, doc: dict[str, Any]) -> None:
        """The home chain is the truth for an interrupted commit phase."""
        record = self.cluster.records.get(tx_id)
        if record is None:
            # Crashed between the outbox flip and the home submit; the
            # shipped payloads are already imported, so just resubmit.
            self._submit_home(tx_id, doc["payload"])
        elif record.committed_at is not None:
            self._decide(tx_id, "committed", None)
        elif record.rejected is not None:
            self._decide(tx_id, "aborted", f"home rejection: {record.rejected}")
        else:
            # Parked in flight.  Trusting the registered submit callback
            # is not enough: the envelope may have died with a crashed
            # mempool *after* admission (record accepted, gossip lost),
            # in which case no commit ever fires and presumed abort
            # stalls with the participants' locks held — found by the
            # crash-restart chaos family (seed 13).  Re-drive the home
            # submission; harmless if the transaction is still pooled
            # (mempools dedup, the callback slot is simply refreshed).
            result = self.cluster.submit_payload(
                doc["payload"],
                callback=lambda status, detail: self._home_settled(
                    tx_id, status, detail
                ),
                _retry=True,
            )
            if not result.accepted:
                # Same rule as _submit_home: a failed admission fires no
                # callback, and with every home validator down (their
                # mempools died with them) the transaction can never
                # commit — abort now, or the participants' prepared
                # locks park with no decision and no pending callback.
                self._home_settled(
                    tx_id, "rejected", result.error or "home admission failed"
                )

    # -- introspection ----------------------------------------------------------

    def active_locks(self) -> list[dict[str, Any]]:
        """Prepared (not yet decided) locks this shard currently holds."""
        return self._locks.find({"status": "prepared"})

    def outbox_record(self, tx_id: str) -> dict[str, Any] | None:
        """This coordinator's durable 2PC record for ``tx_id`` (or None).
        The sharded facade's ingress gate reads it to tell a legitimate
        commit-point home submission from a rogue injected copy."""
        return self._outbox.find_one({"tx_id": tx_id}, copy=False)

    def unfinished(self) -> list[dict[str, Any]]:
        """Outbox records not yet fully acknowledged."""
        return self._outbox.find({"state": {"$ne": "done"}})
