"""The sharded deployment: N BFT groups behind one driver-compatible facade.

A :class:`ShardedCluster` owns one shared event loop, a consistent-hash
ring over shard ids, one :class:`~repro.core.cluster.SmartchainCluster`
per shard (each with its own validator network, storage and mempool) and
one 2PC agent per shard.  It exposes the same surface the single-cluster
deployment gives the Driver — ``submit_payload`` / ``run`` / ``records``
— so examples, scenario runners and benchmarks drive either transparently.

Single-shard transactions (the overwhelming majority under asset-local
routing) go straight into their home shard's BFT group and cost exactly
what they cost on one cluster.  Cross-shard transactions detour through
:class:`~repro.sharding.coordinator.TwoPhaseCoordinator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.encoding import canonical_bytes, deep_copy_json
from repro.common.errors import ValidationError
from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster, TxRecord
from repro.core.driver import Driver, DriverCallback, SubmitResult
from repro.durability.node import DurabilityConfig, NodeDurability
from repro.metrics.collector import RunMetrics, collect_metrics
from repro.sharding.coordinator import (
    COORDINATOR_NODE,
    CoordinatorConfig,
    TwoPhaseCoordinator,
)
from repro.sharding.migration import (
    MigrationConfig,
    MigrationPolicy,
    ReshardController,
)
from repro.sharding.ring import ConsistentHashRing
from repro.sharding.router import RoutingDecision, ShardRouter
from repro.sim.events import EventLoop
from repro.sim.rng import SeededRng
from repro.telemetry import DEFAULT_SAMPLE_RATE, Telemetry


@dataclass
class ShardedClusterConfig:
    """Everything tunable about a sharded deployment."""

    n_shards: int = 2
    #: Validators per shard (each shard is an independent BFT group).
    n_validators: int = 4
    seed: int = 2024
    virtual_nodes: int = 64
    max_block_txs: int = 8
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    #: Retry cadence when a cross-shard submit meets a crashed coordinator.
    submit_retry_delay: float = 1.0
    submit_max_retries: int = 20
    #: Durability stack for every validator node *and* every 2PC agent
    #: (None keeps the abstract always-durable model).
    durability: DurabilityConfig | None = None
    #: One deployment-wide telemetry instance (registry + tracer + flight
    #: recorder) is shared by every shard so cross-shard traces stitch.
    telemetry_enabled: bool = True
    trace_sample_rate: float = DEFAULT_SAMPLE_RATE
    #: WAL-fed materialized views, deployment-global: one
    #: :class:`~repro.views.ViewManager` merges every shard's change feed
    #: behind the facade.  None = auto (on whenever durability is on).
    views: bool | None = None
    #: Elastic resharding state-machine tuning (always constructed; the
    #: controller is inert until a migration starts).
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    #: Watch ``hot_shard_share`` and auto-split hot shards.
    auto_split: bool = False
    #: Auto-split policy (defaults when ``auto_split`` without one).
    migration_policy: MigrationPolicy | None = None


class ShardedCluster:
    """N independent SmartchainDB BFT groups + routing + 2PC, one facade."""

    def __init__(self, config: ShardedClusterConfig | None = None):
        self.config = config or ShardedClusterConfig()
        if self.config.n_shards < 1:
            raise ValueError("a sharded cluster needs at least one shard")
        self.loop = EventLoop()
        self.shard_ids = [f"shard-{index}" for index in range(self.config.n_shards)]
        self.ring = ConsistentHashRing(self.shard_ids, self.config.virtual_nodes)
        self.router = ShardRouter(self.ring)
        #: Shared across every shard: one registry, one tracer (cross-shard
        #: timelines stitch on the globally-stable tx_id), one flight
        #: recorder.  The sampling salt comes from the deployment seed's
        #: own stream, so same-seed replays sample identical transactions.
        self.telemetry = Telemetry(
            self.loop.clock,
            sample_salt=SeededRng(self.config.seed).stream("telemetry").getrandbits(64),
            sample_rate=self.config.trace_sample_rate,
            enabled=self.config.telemetry_enabled,
        )
        #: Deployment-global materialized views: every shard's feeds
        #: apply into this one manager (keyed by shard scope), so facade
        #: reads merge the whole deployment while per-shard serving
        #: filters on the transaction's home shard.
        views_enabled = (
            self.config.views if self.config.views is not None else True
        ) and self.config.durability is not None
        self.views = None
        if views_enabled:
            from repro.views import ViewManager

            self.views = ViewManager(
                telemetry=self.telemetry, telemetry_label="deployment"
            )
        self._views_enabled = views_enabled
        #: Facade-level lifecycle records for cross-shard transactions
        #: (their submit time predates the home-shard submit by the whole
        #: prepare phase, which is exactly the latency worth measuring).
        self.cross_records: dict[str, TxRecord] = {}
        self._cross_callbacks: dict[str, DriverCallback] = {}
        #: Elastic resharding controller; built after the initial shards
        #: so it can see them, consulted by commit/resync plumbing via
        #: getattr until then.
        self.migrator: ReshardController | None = None
        self.shards: dict[str, SmartchainCluster] = {}
        self.agents: dict[str, TwoPhaseCoordinator] = {}
        for index, shard_id in enumerate(self.shard_ids):
            self._build_shard(shard_id, index)
        for shard_id in self.shard_ids:
            self._build_agent(shard_id)
        self._next_shard_index = len(self.shard_ids)
        self.migrator = ReshardController(
            self,
            config=self.config.migration,
            policy=(
                (self.config.migration_policy or MigrationPolicy())
                if self.config.auto_split
                else self.config.migration_policy
            ),
            durability=(
                NodeDurability("reshard-controller", self.loop, self.config.durability)
                if self.config.durability is not None
                else None
            ),
            telemetry=self.telemetry,
        )
        for shard_id, agent in self.agents.items():
            self.migrator.attach_agent(shard_id, agent)
        # All shards derive the same reserved (escrow) accounts.
        self.reserved = self.shards[self.shard_ids[0]].reserved
        self.driver = Driver(self)

    def _build_shard(self, shard_id: str, index: int) -> None:
        shard_config = ClusterConfig(
            n_validators=self.config.n_validators,
            # Decorrelate per-shard stochastic choices (receiver picks,
            # network jitter) without losing determinism.
            seed=self.config.seed + 7919 * index,
            consensus=tendermint_config(max_block_txs=self.config.max_block_txs),
            durability=self.config.durability,
            views=self._views_enabled,
        )
        cluster = SmartchainCluster(
            shard_config,
            loop=self.loop,
            telemetry=self.telemetry,
            scope=shard_id,
            views=self.views,
        )
        # A cross-shard transaction's home commit is not its end-to-end
        # latency (the prepare phase predates the home submit); the
        # facade records those in _cross_outcome instead.
        cluster.latency_filter = lambda tx_id: tx_id not in self.cross_records
        self.shards[shard_id] = cluster
        cluster.engine.commit_listeners.append(
            lambda record, sid=shard_id: self._on_shard_commit(sid, record)
        )
        cluster.add_ingress_gate(
            lambda payload, sid=shard_id: self._foreign_input_gate(sid, payload)
        )
        # A node restored from a pre-cutover disk image must have its
        # moved keys scrubbed back into migrated shape before traffic
        # reaches it.
        cluster.resync_hooks.append(
            lambda node_id, sid=shard_id: self._scrub_after_resync(sid)
        )

    def _build_agent(self, shard_id: str) -> None:
        agent = TwoPhaseCoordinator(
            shard_id,
            self.shards[shard_id],
            self.loop,
            self.agent_for,
            self._cross_outcome,
            self.config.coordinator,
            durability=(
                NodeDurability(f"agent-{shard_id}", self.loop, self.config.durability)
                if self.config.durability is not None
                else None
            ),
        )
        agent.telemetry = self.telemetry
        self.agents[shard_id] = agent
        if self.migrator is not None:
            self.migrator.attach_agent(shard_id, agent)
        # A replica that commits a block late (post-heal catch-up, crash
        # replay) must not re-mint outputs a shard migration has since
        # shipped elsewhere: cutover deletes from every *current* source
        # database, but a lagging node applies the minting block only
        # after that deletion ran.  The registry row is the tombstone.
        for server in self.shards[shard_id].servers.values():
            server.utxo_suppressors.append(
                lambda tx_id, index, sid=shard_id: self._migrated_out(
                    sid, tx_id, index
                )
            )

    def _migrated_out(self, shard_id: str, tx_id: str, index: int) -> bool:
        """True when ``shard_id``'s migration registry says the ref's
        latest hop moved it *off* this shard (latest row wins, so a
        round-trip that came back home does not suppress)."""
        agent = self.agents.get(shard_id)
        if agent is None:
            return False
        latest_seq = -1
        latest_direction = ""
        for row in agent.durable.collection("shard_migrations").find(
            {"transaction_id": tx_id, "output_index": index}, copy=False
        ):
            sequence = int(row["migration_id"].rsplit("-", 1)[1])
            if sequence > latest_seq:
                latest_seq = sequence
                latest_direction = row["direction"]
        return latest_direction == "out"

    def _scrub_after_resync(self, shard_id: str) -> None:
        if self.migrator is not None:
            self.migrator.scrub_shard(shard_id)

    # -- topology ---------------------------------------------------------------

    def add_shard(self) -> str:
        """Grow the deployment by one shard, live.

        The new BFT group, its 2PC agent and the migration fence are all
        wired before the ring learns the member (epoch bump), so no key
        ever routes to a shard that is not yet able to serve it.  Only
        *unseen* genesis keys land on the new shard at first — existing
        placement is pinned by the router's memory until a migration
        moves it.
        """
        index = self._next_shard_index
        self._next_shard_index += 1
        shard_id = f"shard-{index}"
        self.shard_ids.append(shard_id)
        self._build_shard(shard_id, index)
        self._build_agent(shard_id)
        self.ring.add_shard(shard_id)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("shards_added").inc()
            tel.flight.record(self.loop.clock.now, "reshard", f"add_shard:{shard_id}")
        return shard_id

    def reshard(
        self, source: str, target: str | None = None, plan_txs: list[str] | None = None
    ) -> str:
        """Start a live migration off ``source`` — onto ``target``, or
        onto a freshly grown shard (a split) when ``target`` is None.
        Returns the migration id (see :class:`ReshardController`)."""
        if target is None:
            target = self.add_shard()
        return self.migrator.start_migration(source, target, plan_txs=plan_txs)

    def shard(self, shard: str | int) -> SmartchainCluster:
        """A shard's BFT cluster, by id or index."""
        if isinstance(shard, int):
            shard = self.shard_ids[shard]
        return self.shards[shard]

    def agent_for(self, shard_id: str) -> TwoPhaseCoordinator:
        return self.agents[shard_id]

    def crash_coordinator(self, shard: str | int) -> None:
        """Kill a shard's 2PC agent (its BFT nodes keep running)."""
        self.shard(shard).failures.crash_now(COORDINATOR_NODE)

    def recover_coordinator(self, shard: str | int) -> None:
        self.shard(shard).failures.recover_now(COORDINATOR_NODE)

    def restart_node_from_disk(
        self, shard: str | int, node_id: str, torn_bytes: int = 0
    ) -> None:
        """Crash-restart one validator node purely from its SimDisk."""
        self.shard(shard).restart_node_from_disk(node_id, torn_bytes=torn_bytes)

    def restart_coordinator_from_disk(
        self, shard: str | int, torn_bytes: int = 0
    ) -> None:
        """Crash-restart one shard's 2PC agent purely from its SimDisk."""
        if isinstance(shard, int):
            shard = self.shard_ids[shard]
        self.agents[shard].restart_from_disk(torn_bytes=torn_bytes)

    # -- submission --------------------------------------------------------------

    def submit_payload(
        self,
        payload: dict[str, Any],
        callback: DriverCallback | None = None,
        receiver: str | None = None,
        shard_hint: str | None = None,
    ) -> SubmitResult:
        """Route a payload to its home shard (2PC when inputs are remote)."""
        decision = self.router.route(payload, shard_hint)
        self.router.record_home(decision.tx_id, decision.home)
        if not decision.cross_shard:
            return self.shards[decision.home].submit_payload(
                payload, callback, receiver=receiver
            )
        tx_id = payload.get("id", "")
        operation = payload.get("operation", "?")
        existing = self.cross_records.get(tx_id)
        if existing is not None and existing.rejected is None:
            return SubmitResult(tx_id, operation, accepted=True)
        payload = deep_copy_json(payload)
        record = TxRecord(
            tx_id,
            operation,
            len(canonical_bytes(payload)),
            submitted_at=self.loop.clock.now,
        )
        self.cross_records[tx_id] = record
        if callback is not None:
            self._cross_callbacks[tx_id] = callback
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("tx_submitted", shard="facade").inc()
            tel.counter("tx_cross_shard", shard="facade").inc()
            tel.tracer.begin(
                tx_id,
                "submit",
                node="facade",
                operation=operation,
                home=decision.home,
                cross=True,
            )
        self._begin_cross(payload, decision, attempt=0)
        return SubmitResult(tx_id, operation, accepted=True)

    def _foreign_input_gate(self, shard_id: str, payload: dict[str, Any]) -> str | None:
        """Admission gate: spends of foreign-homed outputs enter a shard
        chain only through their 2PC commit-point submission.

        A cross-shard payload injected straight into a home-shard mempool
        (gossip from an adversarial client, or a double-submit replay)
        would validate against locally imported reference payloads and
        commit intra-shard — while the coordinator's 2PC round aborts and
        the remote shard never consumes the input.  Worse, if the rogue
        copy commits *first*, the coordinator's own home submission is
        deduplicated and its settle callback never fires, parking the
        round in ``commit_pending`` with the remote locks held forever.
        The gate closes both doors: admission is per-node and advisory,
        so consulting the live outbox here is safe — block delivery
        never calls it."""
        verdict: str | None = None
        for item in payload.get("inputs") or []:
            fulfills = item.get("fulfills")
            if not fulfills:
                continue
            if self.router.home_of_tx(fulfills["transaction_id"]) == shard_id:
                continue
            if verdict is None:
                doc = self.agents[shard_id].outbox_record(payload.get("id", ""))
                if doc is None:
                    verdict = "absent"
                elif doc["state"] == "commit_pending" or doc["outcome"] == "committed":
                    verdict = "ok"
                else:
                    verdict = doc["state"]
            if verdict != "ok":
                return (
                    f"foreign input {fulfills['transaction_id'][:8]}:"
                    f"{fulfills['output_index']} outside 2PC "
                    f"(outbox={verdict})"
                )
        return None

    def _begin_cross(
        self, payload: dict[str, Any], decision: RoutingDecision, attempt: int
    ) -> None:
        agent = self.agents[decision.home]
        if agent.crashed:
            # Mirrors the single-cluster crashed-receiver retry loop, but
            # bounded so an abandoned coordinator cannot spin the loop.
            if attempt >= self.config.submit_max_retries:
                record = self.cross_records[decision.tx_id]
                record.rejected = f"coordinator for {decision.home} unavailable"
                self._fire_cross(decision.tx_id, "rejected", record.rejected)
                return
            self.loop.schedule_in(
                self.config.submit_retry_delay,
                lambda: self._begin_cross(payload, decision, attempt + 1),
            )
            return
        agent.begin(payload, decision)

    def _cross_outcome(self, tx_id: str, outcome: str, detail: Any) -> None:
        record = self.cross_records.get(tx_id)
        if record is None:
            return
        if outcome == "committed":
            if record.committed_at is None:
                record.committed_at = self.loop.clock.now
                tel = self.telemetry
                if tel is not None and tel.enabled:
                    # End-to-end cross-shard latency: facade submit (before
                    # the prepare phase) to final 2PC outcome.
                    tel.observe_ms(
                        "tx_commit_latency_ms",
                        record.committed_at - record.submitted_at,
                        shard="facade",
                        operation=record.operation,
                    )
            self._fire_cross(tx_id, "committed", detail)
        else:
            record.rejected = str(detail)
            self._fire_cross(tx_id, "rejected", detail)

    def _fire_cross(self, tx_id: str, status: str, detail: Any) -> None:
        callback = self._cross_callbacks.pop(tx_id, None)
        if callback is not None:
            callback(status, detail)

    def _on_shard_commit(self, shard_id: str, record) -> None:
        # Placement memory: spends of these outputs route to this shard.
        for envelope in record.block.transactions:
            self.router.record_home(envelope.tx_id, shard_id)
        migrator = self.migrator
        if migrator is not None and migrator.policy is not None:
            for envelope in record.block.transactions:
                migrator.observe_commit(shard_id, envelope.payload)

    # -- driver-facade conveniences ----------------------------------------------

    @property
    def records(self) -> dict[str, TxRecord]:
        """Aggregate lifecycle records (one full merge per access — for
        bulk consumers like metrics; per-transaction lookups should use
        :meth:`record_for`).

        Cross-shard transactions appear once, with their facade record
        (true submit time) shadowing the home shard's later-submitted one.
        """
        merged: dict[str, TxRecord] = {}
        for cluster in self.shards.values():
            merged.update(cluster.records)
        merged.update(self.cross_records)
        return merged

    def record_for(self, tx_id: str) -> TxRecord | None:
        """One transaction's lifecycle record, without merging anything."""
        record = self.cross_records.get(tx_id)
        if record is not None:
            return record
        for cluster in self.shards.values():
            record = cluster.records.get(tx_id)
            if record is not None:
                return record
        return None

    def run(self, duration: float | None = None, max_events: int = 5_000_000) -> None:
        """Advance every shard (they share one loop) until idle/deadline."""
        if duration is None:
            self.loop.run_until_idle(max_events=max_events)
        else:
            self.loop.run(until=self.loop.clock.now + duration, max_events=max_events)

    def submit_and_settle(self, transaction, max_events: int = 5_000_000) -> TxRecord:
        payload = transaction.to_dict() if hasattr(transaction, "to_dict") else transaction
        self.submit_payload(payload)
        self.loop.run_until_idle(max_events=max_events)
        return self.record_for(payload["id"])

    def committed_records(self) -> list[TxRecord]:
        return [
            record for record in self.records.values() if record.committed_at is not None
        ]

    def any_server(self):
        """A live server from any shard (queries that span the keyspace
        still need per-shard fan-out; this is for schema-level reads)."""
        for cluster in self.shards.values():
            try:
                return cluster.any_server()
            except ValidationError:
                continue
        raise ValidationError("all nodes of every shard are down")

    # -- deployment-wide reads (materialized views) ------------------------------

    def read_replica(self, label: str = "replica"):
        """A follower read surface over the merged deployment views —
        the one place a query spans every shard without fan-out."""
        if self.views is None:
            raise ValidationError("materialized views are disabled on this deployment")
        from repro.views import ReadReplica

        return ReadReplica(self.views, label=label)

    def open_requests(self, capability: str | None = None) -> list[dict[str, Any]]:
        """Open RFQs across *all* shards, from the merged views."""
        if self.views is None:
            raise ValidationError("materialized views are disabled on this deployment")
        return [deep_copy_json(r) for r in self.views.open_requests(capability)]

    def outputs_for(self, public_key: str) -> list[dict[str, Any]]:
        """One account's unspent outputs across all shards (wallet view)."""
        if self.views is None:
            raise ValidationError("materialized views are disabled on this deployment")
        return [deep_copy_json(doc) for doc in self.views.outputs_for(public_key)]

    # -- metrics ------------------------------------------------------------------

    def per_shard_metrics(self) -> dict[str, RunMetrics]:
        """Independent RunMetrics per shard (home-shard view)."""
        metrics = {
            shard_id: collect_metrics(shard_id, cluster.records.values())
            for shard_id, cluster in self.shards.items()
        }
        if self.telemetry.enabled:
            for shard_id, shard_metrics in metrics.items():
                shard_metrics.percentiles_ms = self.telemetry.latency_percentiles(
                    shard=shard_id
                )
        return metrics

    def aggregate_metrics(self) -> RunMetrics:
        """Deployment-wide metrics over the merged record set."""
        metrics = collect_metrics("SHARDED", self.records.values())
        if self.telemetry.enabled:
            # Merging every labelled series is double-count-safe: the
            # latency_filter keeps cross-shard home commits out of the
            # per-shard histograms, so facade + per-shard partitions the
            # committed set.
            metrics.percentiles_ms = self.telemetry.latency_percentiles()
        return metrics

    def latency_percentiles(self, **match_labels: str) -> dict[str, float]:
        """Commit-latency percentile summary from the shared registry."""
        return self.telemetry.latency_percentiles(**match_labels)

    def snapshot_metrics(self) -> dict[str, Any]:
        """Harvest every shard's counters into the shared registry and
        return the canonical metrics dictionary."""
        for cluster in self.shards.values():
            cluster.snapshot_metrics()
        registry = self.telemetry.registry
        for shard_id, agent in self.agents.items():
            for key, value in agent.stats.items():
                registry.gauge(f"2pc_{key}", shard=shard_id).set(value)
        for key, value in self.router.stats.items():
            registry.gauge(f"router_{key}").set(value)
        if self.migrator is not None:
            for key, value in self.migrator.stats.items():
                registry.gauge(f"reshard_{key}").set(value)
        return registry.to_dict()

    def placement_stats(self) -> dict[str, Any]:
        """Routing + 2PC counters for benchmarks and the CLI."""
        per_shard = {
            shard_id: {
                "committed": sum(
                    1
                    for record in cluster.records.values()
                    if record.committed_at is not None
                ),
                "locks_granted": self.agents[shard_id].stats["locks_granted"],
                "coordinated": self.agents[shard_id].stats["coordinated"],
            }
            for shard_id, cluster in self.shards.items()
        }
        return {"router": dict(self.router.stats), "shards": per_shard}
