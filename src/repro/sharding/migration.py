"""Elastic resharding: crash-safe live migration of key ownership.

The consistent-hash ring can *compute* a minimal-movement resize, but a
resize is useless until the deployment can actually move state between
BFT groups while traffic is running.  This module is that protocol: an
epoch-versioned migration state machine driven by a deployment-level
:class:`ReshardController`, built from parts that already exist —
reference-payload shipping, the durability WAL, the 2PC fence, router
placement memory — composed so the migration can be killed at any byte
and never loses, duplicates, or double-spends a key.

Phases of one migration (``planned`` is the initial state)::

    planned -> snapshot_ship -> wal_tail -> drain -> cutover -> done
           \\___________________________________/
                     |  (crash / stall / drain failure)
                     v
                 rolled_back

* **snapshot_ship** — the moving set (a lineage of CREATE/TRANSFER
  transactions with live outputs, selected load-aware by the hot-shard
  policy or explicitly by the caller) is captured at a source chain
  height ``h0`` and its payloads are shipped to the target shard in
  chunks, as idempotent reference imports (imports create no UTXOs, so
  nothing is spendable on the target yet).
* **wal_tail** — the source's journal suffix above ``h0`` is re-scanned
  each round (:func:`~repro.durability.recovery.scan_block_records` on a
  durable deployment, a block-collection scan otherwise): consumed
  outputs leave the moving set, children that kept the lineage on the
  source join it and ship too.  Rounds repeat until the per-round delta
  is bounded.
* **drain** — the source agent's spend guard starts fencing the moving
  set (``redirect:migrating:<id>`` verdicts refuse new admissions, pool
  entries, 2PC prepares *and* pending home commit-points), then the
  controller waits for every in-flight spend — pooled rivals and
  prepared locks — to settle, absorbing their effects through more tail
  rounds.  A drain that cannot settle within its round budget rolls the
  migration back (lifting the fence); nothing was moved yet, so rollback
  is trivially safe.
* **cutover** — the commit point.  The controller journals a durable
  ``cutover`` record (forced to disk) carrying the final moved set, then
  applies it: durable ``shard_migrations`` registry rows on both agents
  (forced), UTXO documents materialize on the target's nodes and vanish
  from the source's, the view manager re-attributes the moved range, the
  router learns the new homes and bumps its epoch so stale-epoch clients
  re-route.  Every part of the apply is idempotent: a controller that
  crashes after the force rolls *forward* on restart; one that crashes
  before it rolls *back*.  Clients that raced the cutover see
  ``redirect:*`` rejections and retry against the new owner (the
  driver's bounded deterministic backoff).

Crash matrix — who can die, and what recovery does:

=============  ==========================================================
crashed party  outcome
=============  ==========================================================
source node    restart-from-disk may lose unsynced deletions; the resync
               hook re-runs the idempotent cutover apply from the agents'
               forced registries (``scrub_shard``).
target node    restart-from-disk may lose shipped payloads/UTXOs; same
               scrub re-imports and re-inserts them.
source/target  pre-cutover: shipping stalls and retries, bounded, then
agent          rolls back.  Post-cutover registry rows are forced before
               any node state moves, so agent restarts cannot lose them.
controller     pre-cutover crash: presumed abort — restart rolls the
               migration back from its journal.  Post-``cutover`` record:
               roll forward — the apply re-runs idempotently.
=============  ==========================================================

The :class:`ReshardController` also closes the detection loop: fed every
commit by the facade, it tracks a sliding ``hot_shard_share`` window and
auto-splits a hot shard (growing the ring or rebalancing onto the
coldest member) when the share crosses its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.encoding import deep_copy_json
from repro.common.errors import MigrationError
from repro.core.transaction import OutputRef
from repro.durability.recovery import collections_state, recover, scan_block_records
from repro.storage.database import Database

#: Every phase, in protocol order (terminal states last).
MIGRATION_PHASES = (
    "planned",
    "snapshot_ship",
    "wal_tail",
    "drain",
    "cutover",
    "done",
    "rolled_back",
)

TERMINAL_PHASES = ("done", "rolled_back")

#: Phases the chaos harness arms ``migrate_trap`` actions on: a trap
#: crashes its role *inside* the phase (each phase spans several loop
#: ticks, so a zero-delay crash scheduled from the phase-entry
#: notification lands mid-phase — mid-snapshot-ship between chunks,
#: and on ``cutover`` between the forced journal record and the apply).
MIGRATE_TRAP_PHASES = ("snapshot_ship", "wal_tail", "drain", "cutover")

#: Parties a ``migrate_trap`` can kill.
MIGRATE_TRAP_ROLES = ("source", "target", "controller")

#: Operations a migration will move.  Marketplace lineage (REQUEST /
#: BID / ACCEPT_BID / RETURN) routes by its RFQ and stays put; spends
#: that cross into a moved asset go through ordinary 2PC.
MOVABLE_OPERATIONS = frozenset({"CREATE", "TRANSFER"})

#: Spend-guard verdicts and rejection reasons for migrating/moved keys
#: start with this marker (exactly 8 characters, so even the
#: truncated-spender form of a DoubleSpendError keeps it intact) — the
#: driver's retry path keys off it.
REDIRECT_MARKER = "redirect"

#: Observer of migration phase transitions: ``(migration_id, phase)``.
#: Like 2PC phase listeners, a listener must not mutate the deployment
#: synchronously — schedule faults through the event loop.
MigrationPhaseListener = Callable[[str, str], None]

#: Phases with their own telemetry clock (``migration_<phase>_ms``).
_CLOCKED_PHASES = ("snapshot_ship", "wal_tail", "drain", "cutover")


@dataclass
class MigrationConfig:
    """Tuning knobs of the migration state machine (simulated seconds)."""

    #: Payloads shipped to the target per snapshot-ship tick.
    chunk_size: int = 6
    #: Spacing between state-machine ticks (ship chunks, tail rounds,
    #: drain probes, stall retries).
    tick_interval: float = 0.02
    #: A tail round adding at most this many fresh transactions counts
    #: as "lag bounded" and advances to drain.
    tail_lag_target: int = 1
    #: Tail rounds before advancing to drain regardless of lag.
    max_tail_rounds: int = 10
    #: Drain probes before the migration gives up and rolls back.
    max_drain_rounds: int = 150
    #: Ticks a pre-cutover phase may stall (no live node / crashed
    #: agent) before presumed-abort rollback.  Cutover never stalls out:
    #: once the commit point is journaled it only rolls forward.
    max_stall_ticks: int = 600
    #: Cap on the moving set (transactions per migration).
    max_plan_txs: int = 48


@dataclass
class MigrationPolicy:
    """Hot-shard auto-split policy (the detection half of the loop)."""

    #: Split when one shard's share of the commit window exceeds this.
    hot_share_threshold: float = 0.6
    #: Sliding window length (movable commits observed).
    window: int = 48
    #: Observations before the share is trusted at all.
    min_observations: int = 32
    #: Simulated seconds between auto-splits.
    cooldown: float = 4.0
    #: Grow the ring with a fresh shard (a true split) instead of
    #: rebalancing onto the coldest existing member.
    grow: bool = True
    #: Never grow past this many shards.
    max_shards: int = 12


class ShardMigration:
    """In-memory state of one migration (the journal is authoritative)."""

    def __init__(self, migration_id: str, source: str, target: str):
        self.migration_id = migration_id
        self.source = source
        self.target = target
        self.phase = "planned"
        #: tx_id -> payload of every transaction in the moving set.
        self.plan: dict[str, dict[str, Any]] = {}
        #: (transaction_id, output_index) -> utxo document still live.
        self.live: dict[tuple[str, int], dict[str, Any]] = {}
        #: Explicit plan requested by the caller (None = select here).
        self.requested: list[str] | None = None
        #: Final moved set journaled at cutover: [tx_id, index, utxo doc].
        self.moved: list[list[Any]] = []
        self.ship_queue: list[str] = []
        self.tailed_height = 0
        self.tail_rounds = 0
        self.drain_rounds = 0
        self.stall_ticks = 0
        #: phase -> entry time (telemetry clocks; lost on controller
        #: restart, where the rebuilt state only rolls forward/back).
        self.phase_started: dict[str, float] = {}
        #: True when rebuilt from the journal after a controller restart
        #: (volatile shipping state is gone: presumed abort pre-cutover).
        self.rebuilt = False

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES


class ReshardController:
    """Deployment-level migration controller + hot-shard policy.

    Args:
        deployment: the owning
            :class:`~repro.sharding.cluster.ShardedCluster`.
        config: state-machine tuning.
        policy: hot-shard auto-split policy (None disables detection;
            explicit :meth:`start_migration` calls still work).
        durability: optional persistence stack for the migration
            journal — required for :meth:`restart_from_disk`.
        telemetry: shared deployment telemetry.
    """

    def __init__(
        self,
        deployment,
        config: MigrationConfig | None = None,
        policy: MigrationPolicy | None = None,
        durability=None,
        telemetry=None,
    ):
        self.deployment = deployment
        self.config = config or MigrationConfig()
        self.policy = policy
        self.durability = durability
        self.telemetry = telemetry
        self.crashed = False
        self._loop = deployment.loop
        self._epoch = 0
        self.migrations: dict[str, ShardMigration] = {}
        self.phase_listeners: list[MigrationPhaseListener] = []
        #: Per-migration outcome reports for benchmarks and the CLI.
        self.reports: dict[str, dict[str, Any]] = {}
        self.journal_db = self._make_journal_database()
        if durability is not None:
            durability.state_provider = self._checkpoint_state
        # Hot-shard policy state: sliding (shard, asset) commit window.
        self._window: list[tuple[str, str]] = []
        self._last_split_at = float("-inf")
        self.stats = {
            "started": 0,
            "done": 0,
            "rolled_back": 0,
            "auto_splits": 0,
            "refs_moved": 0,
            "payloads_shipped": 0,
        }

    # -- plumbing ---------------------------------------------------------------

    def _make_journal_database(self, journaled: bool = True) -> Database:
        wal = (
            self.durability.log
            if journaled and self.durability is not None
            else None
        )
        database = Database("reshard-controller", wal=wal)
        collection = database.create_collection("migrations")
        collection.create_index("migration_id", unique=True)
        collection.create_index("phase")
        return database

    def _checkpoint_state(self) -> dict[str, Any]:
        return {"collections": collections_state(self.journal_db)}

    def _force(self) -> None:
        """Migration force-write point: the ``cutover`` record must hit
        the disk before any state moves — it is the commit point the
        roll-forward/roll-back decision reads after a crash."""
        if self.durability is not None:
            self.durability.log.flush_now()

    @property
    def _journal(self):
        return self.journal_db.collection("migrations")

    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Epoch-guarded timer: anything armed before a crash/recovery
        boundary is dead on arrival (mirrors the 2PC agent's timers)."""
        epoch = self._epoch

        def fire() -> None:
            if self.crashed or self._epoch != epoch:
                return
            callback()

        self._loop.schedule_in(delay, fire)

    def _notify(self, migration_id: str, phase: str) -> None:
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.flight.record(
                self._loop.clock.now, "reshard", phase, tx_id=migration_id
            )
        for listener in self.phase_listeners:
            listener(migration_id, phase)

    def _set_active_gauge(self) -> None:
        tel = self.telemetry
        if tel is not None and tel.enabled:
            active = sum(1 for m in self.migrations.values() if not m.terminal)
            tel.registry.gauge("migrations_active").set(active)

    def _live_node(self, shard_id: str):
        cluster = self.deployment.shards[shard_id]
        for node_id in cluster.engine.validator_order:
            if not cluster.network.is_crashed(node_id):
                return node_id, cluster.servers[node_id]
        return None

    def _enter_phase(self, m: ShardMigration, phase: str, **journal_fields: Any) -> None:
        now = self._loop.clock.now
        tel = self.telemetry
        if tel is not None and tel.enabled:
            started = m.phase_started.get(m.phase)
            if started is not None and m.phase in _CLOCKED_PHASES:
                tel.observe_ms(
                    f"migration_{m.phase}_ms", now - started, shard=m.source
                )
        m.phase = phase
        m.phase_started[phase] = now
        updates: dict[str, Any] = {"phase": phase}
        updates.update(journal_fields)
        self._journal.update_many(
            {"migration_id": m.migration_id}, {"$set": updates}
        )
        if phase in ("cutover",) + TERMINAL_PHASES:
            # The records recovery decisions read must be torn-proof.
            self._force()
        self._set_active_gauge()
        self._notify(m.migration_id, phase)

    # -- starting migrations ------------------------------------------------------

    def _next_id(self) -> str:
        taken = {doc["migration_id"] for doc in self._journal.find({}, copy=False)}
        sequence = len(taken) + 1
        while f"m-{sequence:04d}" in taken:
            sequence += 1
        return f"m-{sequence:04d}"

    def start_migration(
        self, source: str, target: str, plan_txs: list[str] | None = None
    ) -> str:
        """Begin migrating a lineage of keys from ``source`` to ``target``.

        Returns the migration id.  One migration at a time per shard: a
        shard already acting as source or target refuses a second.

        Raises:
            MigrationError: unknown shards, source == target, a
                conflicting active migration, or a crashed controller.
        """
        if self.crashed:
            raise MigrationError("reshard controller is crashed")
        shards = self.deployment.shards
        if source not in shards:
            raise MigrationError(f"unknown source shard {source!r}")
        if target not in shards:
            raise MigrationError(f"unknown target shard {target!r}")
        if source == target:
            raise MigrationError("source and target shards are the same")
        for other in self.migrations.values():
            if not other.terminal and {source, target} & {other.source, other.target}:
                raise MigrationError(
                    f"{other.migration_id} is already migrating "
                    f"{other.source}->{other.target}"
                )
        migration_id = self._next_id()
        m = ShardMigration(migration_id, source, target)
        m.requested = sorted(plan_txs) if plan_txs else None
        m.phase_started["planned"] = self._loop.clock.now
        self.migrations[migration_id] = m
        self._journal.insert_one(
            {
                "migration_id": migration_id,
                "source": source,
                "target": target,
                "phase": "planned",
                "reason": None,
                "h0": 0,
                "planned_refs": [],
                "moved": [],
                "payloads": [],
            }
        )
        self.stats["started"] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("migrations_started", shard=source).inc()
        self._set_active_gauge()
        self._notify(migration_id, "planned")
        self._schedule(self.config.tick_interval, lambda: self._tick(migration_id))
        return migration_id

    def start_split(self, source: str) -> str:
        """Split ``source``: grow the deployment by one shard and move a
        lineage onto it."""
        target = self.deployment.add_shard()
        return self.start_migration(source, target)

    # -- the state machine --------------------------------------------------------

    def _tick(self, migration_id: str) -> None:
        m = self.migrations.get(migration_id)
        if m is None or m.terminal:
            return
        if m.phase == "planned":
            self._tick_plan(m)
        elif m.phase == "snapshot_ship":
            self._tick_ship(m)
        elif m.phase == "wal_tail":
            self._tick_tail(m)
        elif m.phase == "drain":
            self._tick_drain(m)
        elif m.phase == "cutover":
            self._apply_cutover(m)

    def _reschedule(self, m: ShardMigration) -> None:
        self._schedule(
            self.config.tick_interval, lambda: self._tick(m.migration_id)
        )

    def _stall(self, m: ShardMigration) -> None:
        """A tick that could not progress (no live node, crashed agent).
        Pre-cutover stalls are bounded by presumed abort; a journaled
        cutover only ever waits for its parties to come back."""
        m.stall_ticks += 1
        if m.phase != "cutover" and m.stall_ticks > self.config.max_stall_ticks:
            self._rollback(m, f"stalled in {m.phase} for {m.stall_ticks} ticks")
            return
        self._reschedule(m)

    def _tick_plan(self, m: ShardMigration) -> None:
        live = self._live_node(m.source)
        if live is None:
            return self._stall(m)
        node_id, server = live
        plan_ids = m.requested if m.requested is not None else self._select_plan(
            m.source, server
        )
        transactions_seen = 0
        for tx_id in plan_ids:
            payload = server.get_transaction(tx_id)
            if payload is None:
                continue
            m.plan[tx_id] = deep_copy_json(payload)
            transactions_seen += 1
            if transactions_seen >= self.config.max_plan_txs:
                break
        utxos = server.database.collection("utxos")
        for tx_id in sorted(m.plan):
            for doc in utxos.find({"transaction_id": tx_id}, copy=False):
                ref = (doc["transaction_id"], doc["output_index"])
                m.live[ref] = deep_copy_json(doc)
        if not m.live:
            return self._rollback(m, "nothing live to move")
        blocks = server.database.collection("blocks")
        m.tailed_height = max(
            (block["height"] for block in blocks.find({}, copy=False)), default=0
        )
        m.ship_queue = sorted(m.plan)
        self._enter_phase(
            m,
            "snapshot_ship",
            h0=m.tailed_height,
            planned_refs=[[t, i] for t, i in sorted(m.live)],
        )
        self._reschedule(m)

    def _select_plan(self, source: str, server) -> list[str]:
        """Default moving set: source-homed movable transactions with
        live outputs, in deterministic (sorted) order."""
        router = self.deployment.router
        candidates: list[str] = []
        seen: set[str] = set()
        for doc in server.database.collection("utxos").find({}, copy=False):
            tx_id = doc["transaction_id"]
            if tx_id in seen:
                continue
            seen.add(tx_id)
            payload = server.get_transaction(tx_id)
            if payload is None:
                continue
            if payload.get("operation") not in MOVABLE_OPERATIONS:
                continue
            if router.home_of_tx(tx_id) != source:
                continue
            candidates.append(tx_id)
        return sorted(candidates)[: self.config.max_plan_txs]

    def _tick_ship(self, m: ShardMigration) -> None:
        if not m.ship_queue:
            self._enter_phase(m, "wal_tail")
            return self._reschedule(m)
        chunk = m.ship_queue[: self.config.chunk_size]
        del m.ship_queue[: self.config.chunk_size]
        payloads = [m.plan[tx_id] for tx_id in chunk]
        self.deployment.shards[m.target].import_reference_payloads(payloads)
        self.stats["payloads_shipped"] += len(payloads)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("migration_payloads_shipped", shard=m.source).inc(
                len(payloads)
            )
            tel.flight.record(
                self._loop.clock.now,
                "reshard",
                f"ship_chunk:{len(payloads)}",
                tx_id=m.migration_id,
            )
        self._reschedule(m)

    def _records_above(self, shard_id: str, node_id: str, height: int):
        """The source chain's suffix above ``height`` as journal block
        records — from the node's WAL + snapshot when durable (the
        literal WAL-suffix shipping of the protocol), rebuilt from the
        blocks collection on a volatile deployment."""
        cluster = self.deployment.shards[shard_id]
        durability = cluster.node_durability.get(node_id)
        if durability is not None:
            return list(scan_block_records(durability, from_height=height))
        server = cluster.servers[node_id]
        transactions = server.database.collection("transactions")
        records = []
        for block in sorted(
            server.database.collection("blocks").find({}, copy=False),
            key=lambda doc: doc["height"],
        ):
            if block["height"] <= height:
                continue
            entries = []
            for tx_id in block["transaction_ids"]:
                payload = transactions.find_one({"id": tx_id}, copy=False)
                if payload is not None:
                    entries.append([tx_id, deep_copy_json(payload)])
            records.append({"h": block["height"], "txs": entries})
        return records

    def _tail_once(self, m: ShardMigration) -> int | None:
        """One WAL-tail round: absorb the source suffix above the cursor
        into the moving set.  Returns fresh-transaction count, or None
        when no live source node could be read."""
        live = self._live_node(m.source)
        if live is None:
            return None
        node_id, _server = live
        fresh: list[dict[str, Any]] = []
        for record in self._records_above(m.source, node_id, m.tailed_height):
            for entry in record.get("txs") or []:
                tx_id, payload = entry[0], entry[1]
                spent_plan_output = False
                for item in payload.get("inputs") or []:
                    fulfills = item.get("fulfills")
                    if not fulfills:
                        continue
                    ref = (fulfills["transaction_id"], fulfills["output_index"])
                    if ref[0] in m.plan:
                        spent_plan_output = True
                    m.live.pop(ref, None)
                if (
                    tx_id not in m.plan
                    and spent_plan_output
                    and payload.get("operation") in MOVABLE_OPERATIONS
                    and self.deployment.router.home_of_tx(tx_id) == m.source
                    and len(m.plan) < self.config.max_plan_txs
                ):
                    # A child kept the lineage on the source mid-flight:
                    # it joins the moving set so the asset moves whole.
                    copied = deep_copy_json(payload)
                    m.plan[tx_id] = copied
                    fresh.append(copied)
                    for index, output in enumerate(payload.get("outputs") or []):
                        m.live[(tx_id, index)] = {
                            "transaction_id": tx_id,
                            "output_index": index,
                            "public_keys": list(output.get("public_keys", [])),
                            "amount": output.get("amount"),
                        }
            m.tailed_height = max(m.tailed_height, record["h"])
        if fresh:
            self.deployment.shards[m.target].import_reference_payloads(fresh)
            self.stats["payloads_shipped"] += len(fresh)
        return len(fresh)

    def _tick_tail(self, m: ShardMigration) -> None:
        fresh = self._tail_once(m)
        if fresh is None:
            return self._stall(m)
        m.tail_rounds += 1
        if (
            fresh <= self.config.tail_lag_target
            or m.tail_rounds >= self.config.max_tail_rounds
        ):
            self._enter_phase(m, "drain")
        self._reschedule(m)

    def _refresh_live(self, m: ShardMigration) -> bool:
        """Drop moving refs whose UTXO documents vanished on the source —
        consumed by cross-shard decisions the source chain never shows."""
        live = self._live_node(m.source)
        if live is None:
            return False
        _node_id, server = live
        utxos = server.database.collection("utxos")
        for ref in sorted(m.live):
            if (
                utxos.find_one(
                    {"transaction_id": ref[0], "output_index": ref[1]}, copy=False
                )
                is None
            ):
                del m.live[ref]
        return True

    def _pending_writer(self, m: ShardMigration) -> str | None:
        """An in-flight spend of the moving set: a pooled rival on any
        source node, or a prepared 2PC lock on a moving ref."""
        source = self.deployment.shards[m.source]
        for ref in sorted(m.live):
            rival = source.inflight_spender(OutputRef(ref[0], ref[1]))
            if rival is not None:
                return f"pooled {rival[:8]}"
        agent = self.deployment.agents.get(m.source)
        if agent is not None:
            for lock in agent.active_locks():
                if (
                    lock.get("status") == "prepared"
                    and (lock["transaction_id"], lock["output_index"]) in m.live
                ):
                    return f"prepared lock held by {lock['holder'][:8]}"
        return None

    def _tick_drain(self, m: ShardMigration) -> None:
        m.drain_rounds += 1
        if self._tail_once(m) is None or not self._refresh_live(m):
            return self._stall(m)
        if not m.live:
            return self._rollback(m, "moving set fully consumed before cutover")
        if m.drain_rounds > self.config.max_drain_rounds:
            return self._rollback(
                m, f"drain did not settle in {self.config.max_drain_rounds} rounds"
            )
        pending = self._pending_writer(m)
        if pending is not None:
            return self._reschedule(m)
        missing = self._verify_shipped(m)
        if missing:
            self.deployment.shards[m.target].import_reference_payloads(
                [m.plan[tx_id] for tx_id in missing]
            )
            return self._reschedule(m)
        moved = [[ref[0], ref[1], m.live[ref]] for ref in sorted(m.live)]
        m.moved = moved
        # The commit point: one forced journal record carrying everything
        # roll-forward needs.  The apply runs on the next tick, so a
        # crash scheduled from this notification lands exactly between
        # the decision and its effects.
        self._enter_phase(
            m,
            "cutover",
            moved=moved,
            payloads=[m.plan[tx_id] for tx_id in sorted(m.plan)],
        )
        self._schedule(0.0, lambda: self._tick(m.migration_id))

    def _verify_shipped(self, m: ShardMigration) -> list[str]:
        """Plan payloads missing from any live target node (a target
        restart may have torn away unsynced imports)."""
        target = self.deployment.shards[m.target]
        missing: set[str] = set()
        for node_id in target.engine.validator_order:
            if target.network.is_crashed(node_id):
                continue
            transactions = target.servers[node_id].database.collection("transactions")
            for tx_id in sorted(m.plan):
                if transactions.find_one({"id": tx_id}, copy=False) is None:
                    missing.add(tx_id)
        return sorted(missing)

    # -- cutover ------------------------------------------------------------------

    def _apply_cutover(self, m: ShardMigration) -> None:
        source_agent = self.deployment.agents.get(m.source)
        target_agent = self.deployment.agents.get(m.target)
        if (
            source_agent is None
            or target_agent is None
            or source_agent.crashed
            or target_agent.crashed
        ):
            return self._stall(m)
        # 1) Durable ownership registries on both agents, forced before
        #    any node state moves: the replica invariant and the scrub
        #    path read these, so they must never lag the move itself.
        for tx_id, index, doc in m.moved:
            self._ensure_registry_row(
                source_agent, m.migration_id, tx_id, index, "out", m.target, doc
            )
            self._ensure_registry_row(
                target_agent, m.migration_id, tx_id, index, "in", m.source, doc
            )
        source_agent._force()
        target_agent._force()
        # 2) Apply the move to node state (idempotent, see _apply_moves).
        payloads = [m.plan[tx_id] for tx_id in sorted(m.plan)]
        self._apply_moves(m.source, m.target, payloads, m.moved, m.migration_id)
        # 3) New routing epoch: in-flight clients re-route and retry.
        self.deployment.router.bump_epoch()
        now = self._loop.clock.now
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("migration_refs_moved", shard=m.source).inc(len(m.moved))
            drained_at = m.phase_started.get("drain")
            if drained_at is not None:
                tel.observe_ms(
                    "migration_write_pause_ms", now - drained_at, shard=m.source
                )
            planned_at = m.phase_started.get("planned")
            if planned_at is not None:
                tel.observe_ms(
                    "migration_total_ms", now - planned_at, shard=m.source
                )
        self.stats["done"] += 1
        self.stats["refs_moved"] += len(m.moved)
        self.reports[m.migration_id] = {
            "source": m.source,
            "target": m.target,
            "refs_moved": len(m.moved),
            "txs_shipped": len(m.plan),
            "write_pause": (
                now - m.phase_started["drain"] if "drain" in m.phase_started else None
            ),
            "completed_at": now,
        }
        self._enter_phase(m, "done")

    @staticmethod
    def _ensure_registry_row(
        agent,
        migration_id: str,
        tx_id: str,
        index: int,
        direction: str,
        peer: str,
        utxo_doc: dict[str, Any],
    ) -> None:
        registry = agent.durable.collection("shard_migrations")
        existing = registry.find_one(
            {
                "migration_id": migration_id,
                "transaction_id": tx_id,
                "output_index": index,
                "direction": direction,
            },
            copy=False,
        )
        if existing is None:
            registry.insert_one(
                {
                    "migration_id": migration_id,
                    "transaction_id": tx_id,
                    "output_index": index,
                    "direction": direction,
                    "peer": peer,
                    "utxo": deep_copy_json(utxo_doc),
                }
            )

    def _apply_moves(
        self,
        source: str,
        target: str,
        payloads: list[dict[str, Any]],
        moved: list[list[Any]],
        migration_id: str | None = None,
    ) -> None:
        """The idempotent physical move: payload imports + UTXO documents
        materialize on the target, disappear from the source, the views
        re-attribute, the router learns the new homes.  Safe to re-run —
        roll-forward, quiesce repair and the node-restart scrub all do.

        Re-running an *old* migration must not undo newer history: refs
        the target has since spent (chain spender or cross-shard 2PC
        tombstone) stay dead, refs a *later* migration moved off the
        target again are neither re-inserted nor re-homed — the scrub of
        a shard only touched by the earlier hop would otherwise
        resurrect them where they no longer live — and refs a later
        migration moved *back onto the source* are not deleted from it
        (a round trip leaves the source holding them legitimately).

        The spent check is per-replica: each node's utxo view must match
        *its own* chain, so a ref is re-inserted on a replica that has
        not yet applied the spender block (the block's apply deletes it
        again) but never on one whose chain already consumed it.  A
        single cluster-wide probe through one reference node gets this
        wrong in both directions whenever that node lags its peers."""
        deployment = self.deployment
        target_cluster = deployment.shards[target]
        source_cluster = deployment.shards[source]
        target_cluster.import_reference_payloads(payloads)
        spent_on_target = self._spent_on_target(target_cluster, moved)
        moved_on: set[tuple[str, int]] = set()
        target_agent = deployment.agents.get(target)
        if target_agent is not None:
            # Cross-shard spends leave no spender in the target's
            # transactions, only a committed 2PC tombstone on its agent.
            locks = target_agent.durable.collection("shard_locks")
            registry = target_agent.durable.collection("shard_migrations")
            sequence = (
                int(migration_id.rsplit("-", 1)[1]) if migration_id else -1
            )
            for tx_id, index, _doc in moved:
                tombstone = locks.find_one(
                    {
                        "transaction_id": tx_id,
                        "output_index": index,
                        "status": "committed",
                    },
                    copy=False,
                )
                if tombstone is not None:
                    spent_on_target.add((tx_id, index))
                for row in registry.find(
                    {
                        "transaction_id": tx_id,
                        "output_index": index,
                        "direction": "out",
                    },
                    copy=False,
                ):
                    if int(row["migration_id"].rsplit("-", 1)[1]) > sequence:
                        moved_on.add((tx_id, index))
                        break
        returned_to_source: set[tuple[str, int]] = set()
        source_agent = deployment.agents.get(source)
        if source_agent is not None:
            sequence = (
                int(migration_id.rsplit("-", 1)[1]) if migration_id else -1
            )
            registry = source_agent.durable.collection("shard_migrations")
            for tx_id, index, _doc in moved:
                latest_seq, latest_direction = -1, ""
                for row in registry.find(
                    {"transaction_id": tx_id, "output_index": index}, copy=False
                ):
                    row_seq = int(row["migration_id"].rsplit("-", 1)[1])
                    if row_seq > latest_seq:
                        latest_seq = row_seq
                        latest_direction = row["direction"]
                if latest_seq > sequence and latest_direction == "in":
                    returned_to_source.add((tx_id, index))
        for server in target_cluster.servers.values():
            utxos = server.database.collection("utxos")
            spent_here = self._spent_on_replica(server, moved)
            for tx_id, index, doc in moved:
                if (
                    (tx_id, index) in spent_on_target
                    or (tx_id, index) in moved_on
                    or (tx_id, index) in spent_here
                ):
                    continue
                if (
                    utxos.find_one(
                        {"transaction_id": tx_id, "output_index": index}, copy=False
                    )
                    is None
                ):
                    utxos.insert_one(deep_copy_json(doc))
        for server in source_cluster.servers.values():
            utxos = server.database.collection("utxos")
            for tx_id, index, _doc in moved:
                if (tx_id, index) in returned_to_source:
                    continue
                utxos.delete_many(
                    {"transaction_id": tx_id, "output_index": index}
                )
        rehomed = sorted(
            {row[0] for row in moved if (row[0], row[1]) not in moved_on}
        )
        views = getattr(deployment, "views", None)
        if views is not None:
            views.note_migration(rehomed, target)
        for tx_id in rehomed:
            deployment.router.record_home(tx_id, target)

    @staticmethod
    def _spent_on_target(target_cluster, moved: list[list[Any]]) -> set[tuple[str, int]]:
        """Moved refs the *target* has since consumed — a repair pass
        must not resurrect an output the new owner already spent.

        Probes one reference node only, so it can miss spends that node
        has not caught up to; :meth:`_spent_on_replica` re-checks against
        each replica's own chain before any insert."""
        try:
            server = target_cluster.any_server()
        except Exception:
            return set()
        return ReshardController._spent_on_replica(server, moved)

    @staticmethod
    def _spent_on_replica(server, moved: list[list[Any]]) -> set[tuple[str, int]]:
        """Moved refs this replica's own transaction log has consumed."""
        spent: set[tuple[str, int]] = set()
        transactions = server.database.collection("transactions")
        for tx_id, index, *_rest in moved:
            spender = transactions.find_one(
                {
                    "inputs.fulfills.transaction_id": tx_id,
                    "inputs": {
                        "$elemMatch": {
                            "fulfills.transaction_id": tx_id,
                            "fulfills.output_index": index,
                        }
                    },
                },
                copy=False,
            )
            if spender is not None:
                spent.add((tx_id, index))
        return spent

    def _rollback(self, m: ShardMigration, reason: str) -> None:
        if m.terminal or m.phase == "cutover":
            return
        self.stats["rolled_back"] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("migrations_rolled_back", shard=m.source).inc()
        self.reports[m.migration_id] = {
            "source": m.source,
            "target": m.target,
            "rolled_back": reason,
            "completed_at": self._loop.clock.now,
        }
        # Shipped reference payloads stay behind on the target: imports
        # are idempotent and create no UTXOs, so they are inert.
        self._enter_phase(m, "rolled_back", reason=reason)

    # -- the spend-guard fence ----------------------------------------------------

    def attach_agent(self, shard_id: str, agent) -> None:
        """Install this controller's migration fence on a shard's agent
        (the facade calls this for every shard, including grown ones)."""
        agent.migration_guards.append(
            lambda ref, sid=shard_id: self._guard(sid, ref)
        )

    def _guard(self, shard_id: str, ref) -> str | None:
        """Fence verdict for one output ref on one shard: refuse spends
        of the moving set from drain until the cutover lands."""
        for migration_id in sorted(self.migrations):
            m = self.migrations[migration_id]
            if m.source != shard_id or m.phase not in ("drain", "cutover"):
                continue
            if (ref.transaction_id, ref.output_index) in m.live:
                return f"{REDIRECT_MARKER}:migrating:{migration_id}->{m.target}"
        return None

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        """Stop the controller (timers die; fences stay up in memory)."""
        if self.crashed:
            return
        self.crashed = True
        self._epoch += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.flight.record(self._loop.clock.now, "reshard", "crash")

    def recover(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        self._epoch += 1
        self.resume()

    def restart_from_disk(self, torn_bytes: int = 0) -> None:
        """Kill the controller, discard its memory, restore it purely
        from its journal's SimDisk, then roll every recorded migration
        forward (cutover journaled) or back (anything earlier).

        Raises:
            MigrationError: when the controller has no durability stack.
        """
        if self.durability is None:
            raise MigrationError(
                "reshard controller has no durability stack to restart from"
            )
        self.crash()
        self.durability.power_fail(torn_bytes)
        recovered = recover(
            self.durability, lambda: self._make_journal_database(journaled=False)
        )
        self.journal_db = recovered.database
        self.journal_db.attach_wal(self.durability.log)
        self.migrations = {}
        self.crashed = False
        self._epoch += 1
        self.resume()

    def resume(self) -> None:
        """Drive every recorded migration toward a terminal state:
        journaled cutovers roll forward, live pre-cutover migrations get
        a fresh tick budget, orphans (memory lost to a restart) roll
        back, and done migrations re-verify their applied state (the
        idempotent repair that heals node restarts)."""
        if self.crashed:
            return
        for doc in sorted(
            self._journal.find({}, copy=False), key=lambda d: d["migration_id"]
        ):
            migration_id = doc["migration_id"]
            phase = doc["phase"]
            if phase in TERMINAL_PHASES:
                if phase == "done":
                    self._repair_done(doc)
                continue
            m = self.migrations.get(migration_id)
            if m is None:
                m = ShardMigration(migration_id, doc["source"], doc["target"])
                m.phase = phase
                m.moved = [list(row) for row in doc.get("moved") or []]
                for payload in doc.get("payloads") or []:
                    m.plan[payload["id"]] = deep_copy_json(payload)
                m.live = {(row[0], row[1]): row[2] for row in m.moved}
                m.rebuilt = True
                self.migrations[migration_id] = m
            m.stall_ticks = 0
            if m.phase == "cutover":
                self._apply_cutover(m)
            elif m.rebuilt:
                self._rollback(
                    m, "controller restarted mid-migration (presumed abort)"
                )
            else:
                self._reschedule(m)
        self._set_active_gauge()

    def _repair_done(self, doc: dict[str, Any]) -> None:
        moved = [list(row) for row in doc.get("moved") or []]
        if not moved:
            return
        self._apply_moves(
            doc["source"],
            doc["target"],
            [deep_copy_json(p) for p in doc.get("payloads") or []],
            moved,
            doc["migration_id"],
        )

    def scrub_shard(self, shard_id: str) -> None:
        """Re-apply every done migration touching ``shard_id`` — the
        node-recovery hook: a restart-from-disk may have torn away
        unsynced imports, UTXO inserts or deletions, and the forced
        journal/registry records are the truth to restore from."""
        for doc in sorted(
            self._journal.find({"phase": "done"}, copy=False),
            key=lambda d: d["migration_id"],
        ):
            if shard_id in (doc["source"], doc["target"]):
                self._repair_done(doc)

    def unfinished(self) -> list[str]:
        """Ids of journal migrations not yet terminal (quiesce drives
        these to completion before invariants run)."""
        return sorted(
            doc["migration_id"]
            for doc in self._journal.find({}, copy=False)
            if doc["phase"] not in TERMINAL_PHASES
        )

    def journal_record(self, migration_id: str) -> dict[str, Any] | None:
        doc = self._journal.find_one({"migration_id": migration_id}, copy=False)
        return deep_copy_json(doc) if doc is not None else None

    # -- hot-shard policy ---------------------------------------------------------

    def observe_commit(self, shard_id: str, payload: dict[str, Any]) -> None:
        """Feed one committed transaction into the hot-shard window (the
        facade calls this from its commit listener)."""
        if self.policy is None:
            return
        if payload.get("operation") not in MOVABLE_OPERATIONS:
            return
        asset = (payload.get("asset") or {}).get("id") or payload.get("id", "")
        self._window.append((shard_id, asset))
        if len(self._window) > self.policy.window:
            del self._window[: len(self._window) - self.policy.window]
        self.maybe_split()

    def hot_shard_share(self) -> tuple[str | None, float]:
        """(hottest shard, its share of the commit window)."""
        if not self._window:
            return None, 0.0
        counts: dict[str, int] = {}
        for shard_id, _asset in self._window:
            counts[shard_id] = counts.get(shard_id, 0) + 1
        hot = max(sorted(counts), key=lambda sid: counts[sid])
        return hot, counts[hot] / len(self._window)

    def maybe_split(self) -> str | None:
        """Auto-split when one shard dominates the commit window.
        Returns the started migration id, or None."""
        policy = self.policy
        if policy is None or self.crashed:
            return None
        if len(self._window) < policy.min_observations:
            return None
        now = self._loop.clock.now
        if now - self._last_split_at < policy.cooldown:
            return None
        if any(not m.terminal for m in self.migrations.values()):
            return None
        hot, share = self.hot_shard_share()
        if hot is None or share < policy.hot_share_threshold:
            return None
        deployment = self.deployment
        plan = self._hot_plan(hot)
        if not plan:
            return None
        if policy.grow and len(deployment.shard_ids) < policy.max_shards:
            target = deployment.add_shard()
        else:
            counts: dict[str, int] = {sid: 0 for sid in deployment.shard_ids}
            for shard_id, _asset in self._window:
                if shard_id in counts:
                    counts[shard_id] += 1
            coldest = min(
                sorted(sid for sid in counts if sid != hot),
                key=lambda sid: counts[sid],
                default=None,
            )
            if coldest is None:
                return None
            target = coldest
        try:
            migration_id = self.start_migration(hot, target, plan_txs=plan)
        except MigrationError:
            return None
        self._last_split_at = now
        self.stats["auto_splits"] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("migrations_auto_split", shard=hot).inc()
        return migration_id

    def _hot_plan(self, source: str) -> list[str]:
        """The hot half of a shard's window: live movable transactions
        whose assets carry the most recent traffic."""
        asset_counts: dict[str, int] = {}
        total = 0
        for shard_id, asset in self._window:
            if shard_id == source:
                asset_counts[asset] = asset_counts.get(asset, 0) + 1
                total += 1
        if total == 0:
            return []
        hot_assets: set[str] = set()
        cumulative = 0
        for asset in sorted(
            asset_counts, key=lambda a: (-asset_counts[a], a)
        ):
            hot_assets.add(asset)
            cumulative += asset_counts[asset]
            if cumulative * 2 >= total:
                break
        live = self._live_node(source)
        if live is None:
            return []
        _node_id, server = live
        router = self.deployment.router
        plan: list[str] = []
        seen: set[str] = set()
        for doc in server.database.collection("utxos").find({}, copy=False):
            tx_id = doc["transaction_id"]
            if tx_id in seen:
                continue
            seen.add(tx_id)
            payload = server.get_transaction(tx_id)
            if payload is None:
                continue
            if payload.get("operation") not in MOVABLE_OPERATIONS:
                continue
            if router.home_of_tx(tx_id) != source:
                continue
            asset = (payload.get("asset") or {}).get("id") or tx_id
            if asset in hot_assets:
                plan.append(tx_id)
        return sorted(plan)[: self.config.max_plan_txs]
