"""Horizontal partitioning for SmartchainDB clusters.

The paper's evaluation is single-cluster: one BFT group validates every
transaction, so aggregate throughput is capped no matter how fast the
per-node hot path gets.  This package adds the first scale-out layer:

* :mod:`repro.sharding.ring` — a consistent-hash ring with virtual
  nodes mapping asset / RFQ ids to shards with balanced placement and
  minimal key movement on resize;
* :mod:`repro.sharding.router` — classifies each transaction as
  single- vs cross-shard from its asset id and input references and
  picks its home shard;
* :mod:`repro.sharding.coordinator` — a two-phase-commit agent per
  shard (coordinator for home transactions, resource manager for
  remote lock requests) whose prepare/commit/abort traffic runs on the
  simulated event loop, so crash-fault schedules apply to it;
* :mod:`repro.sharding.cluster` — :class:`ShardedCluster`, composing N
  independent :class:`~repro.core.cluster.SmartchainCluster` BFT groups
  behind one driver-compatible facade with per-shard and aggregate
  metrics.
"""

from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.coordinator import CoordinatorConfig, TwoPhaseCoordinator
from repro.sharding.ring import ConsistentHashRing
from repro.sharding.router import RoutingDecision, ShardRouter

__all__ = [
    "ConsistentHashRing",
    "CoordinatorConfig",
    "RoutingDecision",
    "ShardRouter",
    "ShardedCluster",
    "ShardedClusterConfig",
    "TwoPhaseCoordinator",
]
