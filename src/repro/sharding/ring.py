"""Consistent-hash ring with virtual nodes.

Keys (asset ids, RFQ ids, routing hints) and shards are both hashed onto
a 64-bit circle; a key belongs to the first virtual node clockwise from
its point.  Virtual nodes smooth placement so each shard owns many small
arcs instead of one big one, which keeps the load spread tight and —
the property resharding relies on — means adding or removing a shard
only moves the keys that land on the changed arcs (~1/N of the keyspace)
while every other key keeps its owner.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections import Counter
from typing import Iterable, Sequence

#: Default virtual nodes per shard — enough to keep the placement spread
#: within a few percent of uniform at single-digit shard counts.
DEFAULT_VIRTUAL_NODES = 64

_SPACE = 1 << 64


def _hash_point(label: str) -> int:
    """Deterministic 64-bit ring position for a label."""
    digest = hashlib.sha3_256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps string keys to shard ids with minimal-movement resize.

    Every membership change bumps :attr:`epoch`, so a topology version
    travels with the ring: routers stamp their decisions with the epoch
    they routed under, and a decision stamped with an older epoch is
    known-stale — it may name a retired owner — and must be re-routed
    rather than trusted.

    Args:
        shard_ids: initial shard membership.
        virtual_nodes: ring points per shard.
    """

    def __init__(
        self,
        shard_ids: Iterable[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        #: Topology version: starts at 0 on an empty ring and increments
        #: on every successful add/remove (including the constructor's).
        self.epoch = 0
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # -- membership -----------------------------------------------------------

    @property
    def shards(self) -> list[str]:
        """Current membership, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._members

    def add_shard(self, shard_id: str) -> None:
        """Join a shard (idempotent)."""
        if shard_id in self._members:
            return
        self._members.add(shard_id)
        self._rebuild()

    def remove_shard(self, shard_id: str) -> None:
        """Leave a shard; its keys redistribute to the survivors.

        Raises:
            KeyError: if the shard is not a member.
        """
        if shard_id not in self._members:
            raise KeyError(f"shard {shard_id!r} is not on the ring")
        self._members.remove(shard_id)
        self._rebuild()

    def _rebuild(self) -> None:
        self.epoch += 1
        entries: list[tuple[int, str]] = []
        for shard_id in self._members:
            for vnode in range(self.virtual_nodes):
                entries.append((_hash_point(f"{shard_id}#vn{vnode}"), shard_id))
        # Ties (astronomically unlikely) break by shard id so that two
        # rings built from the same membership agree exactly.
        entries.sort()
        self._points = [point for point, _ in entries]
        self._owners = [owner for _, owner in entries]

    # -- lookup ---------------------------------------------------------------

    def shard_for(self, key: str) -> str:
        """Owner shard of ``key``.

        Raises:
            LookupError: on an empty ring.
        """
        if not self._points:
            raise LookupError("consistent-hash ring has no shards")
        position = bisect_right(self._points, _hash_point(key))
        if position == len(self._points):
            position = 0  # wrap past the last virtual node
        return self._owners[position]

    def shard_for_at(self, key: str, epoch: int) -> str:
        """Owner of ``key``, valid only at the current :attr:`epoch`.

        The epoch-stamped lookup migration-aware callers use: a caller
        holding a routing decision from epoch ``e`` re-validates it here
        before acting, and a ring that has since resized refuses rather
        than silently returning an owner computed on fresh topology the
        caller thinks is the old one (or worse: the caller caching a
        retired owner).

        Raises:
            StaleEpochError: when ``epoch`` is not the ring's current
                epoch — the caller must re-route against fresh topology.
            LookupError: on an empty ring.
        """
        from repro.common.errors import StaleEpochError

        if epoch != self.epoch:
            raise StaleEpochError(
                f"ring epoch is {self.epoch}, caller routed at {epoch}",
                current_epoch=self.epoch,
            )
        return self.shard_for(key)

    def key_landing_on(
        self, shard_id: str, prefix: str = "key", attempts: int = 512
    ) -> str:
        """A deterministic string key that maps to ``shard_id`` — used by
        demos/workloads to steer a transaction (e.g. an asset migration)
        onto a chosen shard.

        Raises:
            LookupError: if no probe lands within ``attempts`` (cannot
                happen for a ring member with default attempts).
        """
        if shard_id not in self._members:
            raise LookupError(f"shard {shard_id!r} is not on the ring")
        for probe in range(attempts):
            key = f"{prefix}-{probe}"
            if self.shard_for(key) == shard_id:
                return key
        raise LookupError(
            f"no key with prefix {prefix!r} landed on {shard_id!r} in {attempts} attempts"
        )

    def assignment(self, keys: Sequence[str]) -> dict[str, str]:
        """key -> shard mapping for a batch of keys."""
        return {key: self.shard_for(key) for key in keys}

    def spread(self, keys: Sequence[str]) -> Counter:
        """shard -> key count placement histogram."""
        counts: Counter = Counter({shard_id: 0 for shard_id in self._members})
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
