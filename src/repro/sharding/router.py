"""Shard-aware transaction routing.

Every transaction has exactly one **home shard** — the BFT group that
orders and commits it — and zero or more **participant shards** holding
the UTXOs its inputs spend.  Placement follows the data:

* genesis operations (CREATE, REQUEST) are placed by their own id —
  the asset/RFQ is born on its ring shard;
* marketplace operations (BID, ACCEPT_BID, RETURN) follow their RFQ
  (``references[0]``), so one auction's bids, acceptance and returns
  all commit in one BFT group;
* other spending operations (TRANSFER) follow their first input — the
  transaction goes where the UTXO lives;
* an explicit ``metadata["shard_key"]`` (or a submit-time hint)
  overrides all of the above — the escape hatch that lets a TRANSFER
  *migrate* an asset to another shard, which is what makes a spend
  cross-shard in the first place.

A transaction whose inputs all live on its home shard is single-shard
and commits through the home group alone; any remote input makes it
cross-shard and routes it through the 2PC coordinator instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import StaleEpochError
from repro.core.transaction import OutputRef
from repro.sharding.ring import ConsistentHashRing

#: Metadata key callers set to pin / migrate a transaction's home shard.
SHARD_KEY_METADATA = "shard_key"

#: Operations routed by the RFQ they reference.
_RFQ_ROUTED = frozenset({"BID", "ACCEPT_BID", "RETURN"})


@dataclass(frozen=True)
class RoutingDecision:
    """Where one transaction executes."""

    tx_id: str
    operation: str
    home: str
    #: participant shard -> refs of the inputs it holds (home included).
    input_shards: dict[str, tuple[OutputRef, ...]] = field(default_factory=dict)

    @property
    def remote_shards(self) -> list[str]:
        """Participant shards other than home, sorted for determinism."""
        return sorted(shard for shard in self.input_shards if shard != self.home)

    @property
    def cross_shard(self) -> bool:
        return bool(self.remote_shards)


class ShardRouter:
    """Routes payloads onto a :class:`ConsistentHashRing`.

    The router learns where transactions actually committed
    (:meth:`record_home`) so that spends of an asset that migrated
    across shards keep following its current location, not its birth
    shard.
    """

    def __init__(self, ring: ConsistentHashRing):
        self.ring = ring
        #: Routing epoch: bumped at every migration cutover (placement
        #: moved even if the ring membership did not) and re-synced to
        #: ring epochs on resize.  Clients stamp submissions with the
        #: epoch they routed under; a stale stamp is rejected with a
        #: redirect instead of silently landing on a retired owner.
        self.epoch = ring.epoch
        #: tx id -> shard it committed (or was submitted) on.  Grows with
        #: the ledger; safe eviction needs per-output spent tracking
        #: (dropping an entry whose outputs are live would mis-route its
        #: spends) and lands with the rebalancing PR.
        self._tx_home: dict[str, str] = {}
        self.stats = {
            "routed": 0,
            "single_shard": 0,
            "cross_shard": 0,
            "stale_epoch_rejected": 0,
        }

    # -- placement memory -----------------------------------------------------

    def record_home(self, tx_id: str, shard_id: str) -> None:
        """Remember which shard owns a transaction's outputs."""
        self._tx_home[tx_id] = shard_id

    # -- epochs ---------------------------------------------------------------

    def bump_epoch(self) -> int:
        """Advance the routing epoch (a migration cutover just moved
        placement).  Absorbs any ring resize that happened since, so the
        router epoch is always >= the ring's and strictly increases."""
        self.epoch = max(self.epoch, self.ring.epoch) + 1
        return self.epoch

    def check_epoch(self, epoch: int | None) -> None:
        """Reject a decision stamped with an out-of-date routing epoch.

        Raises:
            StaleEpochError: when ``epoch`` is older than the current
                routing epoch (carries the fresh epoch for the retry).
        """
        if epoch is not None and epoch < max(self.epoch, self.ring.epoch):
            self.stats["stale_epoch_rejected"] += 1
            raise StaleEpochError(
                f"routing epoch advanced to {self.epoch} (caller stamped {epoch}); "
                "re-route and retry",
                current_epoch=self.epoch,
            )

    def home_of_tx(self, tx_id: str) -> str:
        """Shard holding ``tx_id``'s outputs (ring fallback for genesis
        transactions that never flowed through this router)."""
        known = self._tx_home.get(tx_id)
        if known is not None:
            return known
        return self.ring.shard_for(tx_id)

    # -- routing --------------------------------------------------------------

    def home_for(self, payload: dict[str, Any], shard_hint: str | None = None) -> str:
        """Home shard of one payload (see module docstring for rules)."""
        if shard_hint is not None:
            if shard_hint not in self.ring:
                raise LookupError(f"shard hint {shard_hint!r} is not a ring member")
            return shard_hint
        metadata = payload.get("metadata") or {}
        shard_key = metadata.get(SHARD_KEY_METADATA)
        if isinstance(shard_key, str) and shard_key:
            return self.ring.shard_for(shard_key)
        operation = payload.get("operation", "")
        references = payload.get("references") or []
        if operation in _RFQ_ROUTED and references:
            return self.home_of_tx(references[0])
        for item in payload.get("inputs") or []:
            fulfills = item.get("fulfills")
            if fulfills:
                return self.home_of_tx(fulfills["transaction_id"])
        return self.ring.shard_for(payload.get("id", ""))

    def route(
        self,
        payload: dict[str, Any],
        shard_hint: str | None = None,
        epoch: int | None = None,
    ) -> RoutingDecision:
        """Full routing decision: home shard + per-shard input refs.

        ``epoch`` (when given) is the routing epoch the caller computed
        any cached placement under; a stale stamp raises
        :class:`~repro.common.errors.StaleEpochError` before any
        decision is made.
        """
        self.check_epoch(epoch)
        home = self.home_for(payload, shard_hint)
        by_shard: dict[str, list[OutputRef]] = {}
        for item in payload.get("inputs") or []:
            fulfills = item.get("fulfills")
            if not fulfills:
                continue
            ref = OutputRef(fulfills["transaction_id"], int(fulfills["output_index"]))
            by_shard.setdefault(self.home_of_tx(ref.transaction_id), []).append(ref)
        decision = RoutingDecision(
            tx_id=payload.get("id", ""),
            operation=payload.get("operation", "?"),
            home=home,
            input_shards={shard: tuple(refs) for shard, refs in by_shard.items()},
        )
        self.stats["routed"] += 1
        self.stats["cross_shard" if decision.cross_shard else "single_shard"] += 1
        return decision
