"""Crash-fault injection schedules.

Section 4.2.1 of the paper analyses the non-locking nested transaction
protocol under crashes at specific phases: while processing the parent
transaction, while enqueueing RETURNs, and while processing RETURNs.  This
module provides a small scheduler for scripting such scenarios against the
simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.events import EventLoop
from repro.sim.network import Network

#: Event-loop priority of crash/recovery events.  Failures sort *before*
#: message deliveries scheduled for the same simulated instant, so the
#: outcome of a tick never depends on whether the fault schedule was
#: installed before or after the message was sent — the stable tie-break
#: deterministic replay relies on.
FAILURE_PRIORITY = -1


@dataclass(frozen=True)
class CrashEvent:
    """One scripted crash (and optional recovery)."""

    node_id: str
    crash_at: float
    recover_at: float | None = None


class FailureInjector:
    """Applies :class:`CrashEvent` schedules to a :class:`Network`.

    Nodes learn about their own crash through the ``on_crash`` /
    ``on_recover`` callbacks so they can drop volatile state (mempool)
    while keeping durable state (storage, recovery log) — exactly the
    split the paper's recovery protocol relies on.
    """

    def __init__(self, loop: EventLoop, network: Network):
        self._loop = loop
        self._network = network
        self._on_crash: dict[str, Callable[[], None]] = {}
        self._on_recover: dict[str, Callable[[], None]] = {}
        self.log: list[tuple[float, str, str]] = []

    def register_callbacks(
        self,
        node_id: str,
        on_crash: Callable[[], None] | None = None,
        on_recover: Callable[[], None] | None = None,
    ) -> None:
        """Register node-side crash/recovery hooks."""
        if on_crash is not None:
            self._on_crash[node_id] = on_crash
        if on_recover is not None:
            self._on_recover[node_id] = on_recover

    def schedule(self, events: list[CrashEvent]) -> None:
        """Script a set of crash/recovery events onto the loop."""
        for event in events:
            self._loop.schedule_at(
                event.crash_at,
                lambda nid=event.node_id: self._crash(nid),
                priority=FAILURE_PRIORITY,
            )
            if event.recover_at is not None:
                if event.recover_at <= event.crash_at:
                    raise ValueError("recovery must happen after the crash")
                self._loop.schedule_at(
                    event.recover_at,
                    lambda nid=event.node_id: self._recover(nid),
                    priority=FAILURE_PRIORITY,
                )

    def crash_now(self, node_id: str) -> None:
        """Immediately crash a node."""
        self._crash(node_id)

    def recover_now(self, node_id: str) -> None:
        """Immediately recover a node."""
        self._recover(node_id)

    def _crash(self, node_id: str) -> None:
        self._network.crash(node_id)
        self.log.append((self._loop.clock.now, "crash", node_id))
        callback = self._on_crash.get(node_id)
        if callback is not None:
            callback()

    def _recover(self, node_id: str) -> None:
        self._network.recover(node_id)
        self.log.append((self._loop.clock.now, "recover", node_id))
        callback = self._on_recover.get(node_id)
        if callback is not None:
            callback()
