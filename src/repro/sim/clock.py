"""Simulated time.

The paper's evaluation ran on a DigitalOcean cluster and measured wall
clock.  We substitute a simulated clock: functional logic executes for
real, while *time* advances only through explicit cost charges.  This
makes every benchmark deterministic and lets a laptop sweep 32-node
clusters in seconds.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds as float)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds.

        Raises:
            ValueError: on negative deltas — simulated time never rewinds.
        """
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
