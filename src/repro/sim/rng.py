"""Deterministic randomness for simulations and workloads.

Every stochastic choice (receiver-node selection, network jitter, workload
payload sizes) flows through a named, seeded stream so that experiments are
exactly reproducible and independent subsystems don't perturb each other's
sequences when one of them draws more numbers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A master seed fanning out independent named streams."""

    def __init__(self, seed: int = 2024):
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Named, independently seeded ``random.Random`` instance."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha3_256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Draw one element from ``options`` on the named stream."""
        return self.stream(name).choice(list(options))

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform float on the named stream."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform int (inclusive) on the named stream."""
        return self.stream(name).randint(low, high)

    def shuffle(self, name: str, items: list[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        copy = list(items)
        self.stream(name).shuffle(copy)
        return copy
