"""Simulated cluster network.

Models the message fabric between validator nodes: per-link latency with
deterministic jitter, bandwidth-proportional serialisation delay for large
payloads, broadcast helpers, and partition/crash awareness (delivery to a
crashed or partitioned node is silently dropped, as in a real network).

Latency defaults approximate a single-region cloud deployment like the
paper's DigitalOcean setup (sub-millisecond to a few milliseconds RTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.events import EventLoop
from repro.sim.rng import SeededRng


@dataclass
class NetworkConfig:
    """Tunable link characteristics.

    Attributes:
        base_latency: one-way propagation delay floor (seconds).
        jitter: max additional uniform random delay (seconds).
        bandwidth_bytes_per_sec: serialisation rate for payload bytes.
    """

    base_latency: float = 0.002
    jitter: float = 0.001
    bandwidth_bytes_per_sec: float = 125_000_000.0  # ~1 Gbps


@dataclass
class Message:
    """A network message between nodes."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size_bytes: int = 256
    send_time: float = 0.0


class Network:
    """Connects named nodes through a latency/bandwidth model.

    Nodes register a handler; :meth:`send` schedules the handler invocation
    on the shared event loop after the modelled delay.  Crashed nodes
    receive nothing; messages sent *by* crashed nodes are dropped too.
    """

    def __init__(self, loop: EventLoop, rng: SeededRng, config: NetworkConfig | None = None):
        self._loop = loop
        self._rng = rng
        self.config = config or NetworkConfig()
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._crashed: set[str] = set()
        self._partitions: list[set[str]] = []
        #: Chaos knob: upper bound of an extra per-message uniform delay.
        #: While non-zero, messages on one link can overtake each other
        #: (delivery reordering) — the fault the chaos harness injects.
        self.chaos_extra_delay = 0.0
        self.stats = {"sent": 0, "delivered": 0, "dropped": 0, "bytes": 0}

    # -- membership -----------------------------------------------------------

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler."""
        self._handlers[node_id] = handler

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    # -- failures -------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Mark a node offline (messages to/from it are dropped)."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        """Bring a crashed node back online."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    def partition(self, groups: list[set[str]]) -> None:
        """Split the network: messages may only flow within one group."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        """Remove all partitions."""
        self._partitions = []

    def set_chaos(self, extra_delay: float) -> None:
        """Set (or clear, with ``0.0``) the extra-delay chaos window.

        Raises:
            ValueError: on negative delays.
        """
        if extra_delay < 0:
            raise ValueError(f"chaos delay must be >= 0, got {extra_delay}")
        self.chaos_extra_delay = extra_delay

    def _can_communicate(self, sender: str, recipient: str) -> bool:
        if sender in self._crashed or recipient in self._crashed:
            return False
        if not self._partitions:
            return True
        for group in self._partitions:
            if sender in group and recipient in group:
                return True
        return False

    # -- transmission ----------------------------------------------------------

    def delay_for(self, size_bytes: int, link: str) -> float:
        """Deterministic-jitter delay for a message of ``size_bytes``."""
        jitter = self._rng.uniform(f"net:{link}", 0.0, self.config.jitter)
        serialisation = size_bytes / self.config.bandwidth_bytes_per_sec
        chaos = 0.0
        if self.chaos_extra_delay > 0:
            # Drawn per message on a dedicated stream so enabling chaos
            # perturbs delivery order without shifting the base-jitter
            # sequence other subsystems consume.
            chaos = self._rng.uniform(f"net-chaos:{link}", 0.0, self.chaos_extra_delay)
        return self.config.base_latency + jitter + serialisation + chaos

    def send(self, sender: str, recipient: str, kind: str, payload: Any, size_bytes: int = 256) -> None:
        """Send one message; delivery is scheduled on the event loop."""
        self.stats["sent"] += 1
        self.stats["bytes"] += size_bytes
        if recipient not in self._handlers or not self._can_communicate(sender, recipient):
            self.stats["dropped"] += 1
            return
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            send_time=self._loop.clock.now,
        )
        delay = self.delay_for(size_bytes, f"{sender}->{recipient}")

        def deliver() -> None:
            # Re-check at delivery time: the recipient may have crashed
            # while the message was in flight.
            if not self._can_communicate(sender, recipient):
                self.stats["dropped"] += 1
                return
            self.stats["delivered"] += 1
            self._handlers[recipient](message)

        self._loop.schedule_in(delay, deliver)

    def broadcast(self, sender: str, kind: str, payload: Any, size_bytes: int = 256) -> None:
        """Send to every registered node except the sender."""
        for node_id in self.nodes():
            if node_id != sender:
                self.send(sender, node_id, kind, payload, size_bytes)
