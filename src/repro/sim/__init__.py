"""Discrete-event simulation substrate (clock, events, network, failures)."""

from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, EventLoop
from repro.sim.failures import CrashEvent, FailureInjector
from repro.sim.network import Message, Network, NetworkConfig
from repro.sim.rng import SeededRng

__all__ = [
    "CrashEvent",
    "EventHandle",
    "EventLoop",
    "FailureInjector",
    "Message",
    "Network",
    "NetworkConfig",
    "SeededRng",
    "SimClock",
]
