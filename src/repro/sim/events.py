"""Discrete-event loop.

Events are (time, priority, seq, callback) entries in a heap.  The loop
pops the earliest event, advances the shared :class:`SimClock` to its
timestamp, and runs the callback — which may schedule further events.
Ties break by insertion order so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import SimClock


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """Deterministic discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._heap: list[_Event] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of scheduled, uncancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule_at(self, timestamp: float, callback: Callable[[], Any], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time.

        Raises:
            ValueError: if the timestamp is in the simulated past.
        """
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule at {timestamp} before now ({self.clock.now})"
            )
        event = _Event(timestamp, priority, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: Callable[[], Any], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` after a relative delay (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback, priority)

    def step(self) -> bool:
        """Run the single earliest event; returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Args:
            until: stop once the next event would run after this time
                (the clock is advanced to ``until``).
            max_events: safety valve against runaway feedback loops.

        Returns:
            Number of events executed by this call.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            upcoming = self._heap[0]
            if upcoming.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and upcoming.time > until:
                break
            self.step()
            executed += 1
        if until is not None:
            self.clock.advance_to(until)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)
