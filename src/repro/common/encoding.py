"""Canonical serialisation and address encodings.

BigchainDB computes transaction ids as the SHA3-256 of the *canonically
serialised* transaction body (sorted keys, no whitespace, UTF-8), and
renders keys and signatures in base58.  Both are reimplemented here from
scratch so the library has no dependencies beyond the standard library.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import EncodingError

#: Bitcoin-style base58 alphabet (no 0, O, I, l).
BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

_BASE58_INDEX = {char: index for index, char in enumerate(BASE58_ALPHABET)}


def canonical_serialize(value: Any) -> str:
    """Serialise ``value`` into the canonical JSON form used for hashing.

    Keys are sorted, separators carry no whitespace, and non-ASCII text is
    preserved as UTF-8 (``ensure_ascii=False``) so the same logical document
    always produces the same byte string.

    Raises:
        EncodingError: if ``value`` contains non-JSON-serialisable objects.
    """
    try:
        return json.dumps(
            value,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
        )
    except (TypeError, ValueError) as exc:
        raise EncodingError(f"value is not canonically serialisable: {exc}") from exc


def canonical_bytes(value: Any) -> bytes:
    """UTF-8 bytes of :func:`canonical_serialize`."""
    return canonical_serialize(value).encode("utf-8")


def base58_encode(data: bytes) -> str:
    """Encode ``data`` using the Bitcoin base58 alphabet.

    Leading zero bytes are preserved as leading ``1`` characters, matching
    the reference encoding used for keys and signatures.
    """
    leading_zeros = 0
    for byte in data:
        if byte == 0:
            leading_zeros += 1
        else:
            break

    number = int.from_bytes(data, "big")
    digits: list[str] = []
    while number > 0:
        number, remainder = divmod(number, 58)
        digits.append(BASE58_ALPHABET[remainder])
    return "1" * leading_zeros + "".join(reversed(digits))


def base58_decode(text: str) -> bytes:
    """Decode a base58 string back to bytes.

    Raises:
        EncodingError: if ``text`` contains characters outside the alphabet.
    """
    leading_ones = 0
    for char in text:
        if char == "1":
            leading_ones += 1
        else:
            break

    number = 0
    for char in text:
        try:
            number = number * 58 + _BASE58_INDEX[char]
        except KeyError:
            raise EncodingError(f"invalid base58 character: {char!r}") from None

    if number == 0:
        body = b""
    else:
        body = number.to_bytes((number.bit_length() + 7) // 8, "big")
    return b"\x00" * leading_ones + body


def hex_encode(data: bytes) -> str:
    """Lowercase hex string of ``data``."""
    return data.hex()


def hex_decode(text: str) -> bytes:
    """Decode a hex string, accepting an optional ``0x`` prefix.

    Raises:
        EncodingError: on odd length or non-hex characters.
    """
    if text.startswith(("0x", "0X")):
        text = text[2:]
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise EncodingError(f"invalid hex string: {exc}") from exc


def deep_copy_json(value: Any) -> Any:
    """Copy a JSON-like structure (dict/list/scalars) without shared state.

    Used when handing transaction payloads across trust boundaries (driver
    to server, server to storage) so that later mutation by the caller
    cannot corrupt validated state.
    """
    if isinstance(value, dict):
        return {key: deep_copy_json(item) for key, item in value.items()}
    if isinstance(value, list):
        return [deep_copy_json(item) for item in value]
    return value
