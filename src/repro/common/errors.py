"""Exception hierarchy for the SmartchainDB reproduction.

The hierarchy mirrors the error classes referenced by the paper's
validation algorithms (Algorithms 1-3): schema violations, semantic
validation failures (``ValidationError``), missing spent inputs
(``InputDoesNotExistError``), double spends, capability mismatches
(``InsufficientCapabilitiesError``) and duplicate nested parents
(``DuplicateTransactionError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification against its public key/message."""


class InvalidKeyError(CryptoError):
    """A key is malformed (wrong length, bad encoding, off-curve point)."""


class ThresholdNotMetError(CryptoError):
    """A threshold (multi-signature) condition had too few valid subsignatures."""


# ---------------------------------------------------------------------------
# Encoding / schema
# ---------------------------------------------------------------------------

class EncodingError(ReproError):
    """Canonical serialisation or base58/hex decoding failure."""


class YamlParseError(ReproError):
    """The yamlite parser rejected a document."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SchemaValidationError(ReproError):
    """A transaction payload violated its YAML/JSON schema (Algorithm 1).

    ``path`` locates the offending element, e.g. ``outputs[0].amount``.
    """

    def __init__(self, message: str, path: str = "$"):
        self.path = path
        super().__init__(f"{path}: {message}")


class UnknownOperationError(SchemaValidationError):
    """The transaction ``operation`` is outside the reserved operation set."""


# ---------------------------------------------------------------------------
# Semantic validation (server side)
# ---------------------------------------------------------------------------

class ValidationError(ReproError):
    """A transaction failed a semantic validation condition.

    ``condition`` optionally names the violated condition from the formal
    model, e.g. ``"CBID.6"`` for condition 6 of the BID type.
    """

    def __init__(self, message: str, condition: str | None = None):
        self.condition = condition
        if condition is not None:
            message = f"[{condition}] {message}"
        super().__init__(message)


class InputDoesNotExistError(ValidationError):
    """An input spends an output of a transaction that is not committed."""


class DoubleSpendError(ValidationError):
    """An input spends an output that an earlier committed transaction spent."""


class InsufficientCapabilitiesError(ValidationError):
    """BID asset capabilities do not cover the REQUEST capabilities (CBID.7)."""


class DuplicateTransactionError(ValidationError):
    """A transaction with this id (or a conflicting ACCEPT_BID) already exists."""


class AmountError(ValidationError):
    """Output amounts are non-positive or do not balance the spent inputs."""


class WorkflowError(ValidationError):
    """A transaction sequence violates the workflow rules (Definition 5)."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for document-store failures."""


class DuplicateKeyError(StorageError):
    """Insert violated a unique index."""


class CollectionNotFoundError(StorageError):
    """Named collection does not exist in the database."""


class QueryError(StorageError):
    """Malformed query document (unknown operator, bad operand type)."""


# ---------------------------------------------------------------------------
# Sharding / elastic topology
# ---------------------------------------------------------------------------

class ShardingError(ReproError):
    """Base class for shard-topology failures."""


class WrongShardError(ShardingError):
    """A request reached a shard that no longer (or never) owned its key.

    Raised/reported while a key range is migrating or after a cutover
    moved it.  ``owner`` names the shard the client should retry against
    (None when the new owner is not yet known, e.g. mid-drain).  The
    driver's bounded-backoff retry path keys off this type and off the
    ``redirect`` marker in rejection reasons.
    """

    def __init__(self, message: str, owner: str | None = None):
        self.owner = owner
        super().__init__(message)


class StaleEpochError(ShardingError):
    """A routing decision was stamped with an out-of-date ring epoch.

    The topology resized after the caller routed; whatever owner the
    caller computed may be retired.  Carries the ring's
    ``current_epoch`` so the client can re-route and retry.
    """

    def __init__(self, message: str, current_epoch: int = 0):
        self.current_epoch = current_epoch
        super().__init__(message)


class MigrationError(ShardingError):
    """A shard migration could not start or make progress."""


# ---------------------------------------------------------------------------
# Consensus / networking
# ---------------------------------------------------------------------------

class ConsensusError(ReproError):
    """Base class for consensus-layer failures."""


class QuorumNotReachedError(ConsensusError):
    """Fewer than 2/3 of voting power is online; the chain halts."""


class NodeCrashedError(ConsensusError):
    """Operation attempted on a crashed node."""


class MempoolFullError(ConsensusError):
    """The node's mempool rejected a transaction because it is at capacity."""


# ---------------------------------------------------------------------------
# Ethereum baseline
# ---------------------------------------------------------------------------

class EvmError(ReproError):
    """Base class for the smart-contract runtime."""


class OutOfGasError(EvmError):
    """Execution exceeded the transaction gas limit."""


class RevertError(EvmError):
    """Contract execution reverted (Solidity ``require``/``revert``)."""

    def __init__(self, reason: str = ""):
        self.reason = reason
        super().__init__(f"execution reverted: {reason}" if reason else "execution reverted")


class BlockGasLimitError(EvmError):
    """A single transaction needs more gas than fits in one block."""
