"""BFT consensus substrate: Tendermint- and IBFT-style engines."""

from repro.consensus.abci import Application, NullApplication, envelope_for
from repro.consensus.bft import GENESIS_ID, BftConfig, BftEngine, CommitRecord, Validator
from repro.consensus.ibft import DEFAULT_BLOCK_GAS_LIMIT, ibft_config, make_ibft_cluster
from repro.consensus.mempool import Mempool
from repro.consensus.tendermint import make_tendermint_cluster, tendermint_config
from repro.consensus.types import NIL, PRECOMMIT, PREVOTE, Block, TxEnvelope, Vote

__all__ = [
    "Application",
    "BftConfig",
    "BftEngine",
    "Block",
    "CommitRecord",
    "DEFAULT_BLOCK_GAS_LIMIT",
    "GENESIS_ID",
    "Mempool",
    "NIL",
    "NullApplication",
    "PRECOMMIT",
    "PREVOTE",
    "TxEnvelope",
    "Validator",
    "Vote",
    "envelope_for",
    "ibft_config",
    "make_ibft_cluster",
    "make_tendermint_cluster",
    "tendermint_config",
]
