"""Tendermint configuration of the BFT engine (SmartchainDB side).

BigchainDB runs Tendermint with no mining and Proof-of-Stake-style
validator sets; blocks are small and frequent, and *blockchain pipelining*
lets validators vote on new blocks before the previous block is finalised
(paper Section 2.2).
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.abci import Application
from repro.consensus.bft import BftConfig, BftEngine
from repro.sim.events import EventLoop
from repro.sim.network import Network


def tendermint_config(
    max_block_txs: int = 16,
    pipelining: bool = True,
    propose_timeout: float = 1.0,
) -> BftConfig:
    """Standard Tendermint parameters used by SmartchainDB."""
    return BftConfig(
        max_block_txs=max_block_txs,
        max_block_weight=None,
        pipelining=pipelining,
        propose_timeout=propose_timeout,
        min_block_interval=0.0,
        vote_size_bytes=128,
    )


def make_tendermint_cluster(
    loop: EventLoop,
    network: Network,
    application_factory: Callable[[str], Application],
    n_validators: int = 4,
    config: BftConfig | None = None,
) -> BftEngine:
    """Build an ``n_validators``-node Tendermint cluster."""
    validator_ids = [f"scdb-{index}" for index in range(n_validators)]
    return BftEngine(
        loop=loop,
        network=network,
        application_factory=application_factory,
        validator_ids=validator_ids,
        config=config or tendermint_config(),
    )
