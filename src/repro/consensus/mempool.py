"""Per-node mempool: admission, dedup, and block reaping."""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import MempoolFullError
from repro.consensus.types import TxEnvelope


class Mempool:
    """FIFO transaction pool with id-dedup and weight-bounded reaping.

    Args:
        capacity: maximum resident transactions; beyond it, adds raise
            :class:`MempoolFullError` (clients are expected to retry).
    """

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self._pool: "OrderedDict[str, TxEnvelope]" = OrderedDict()
        self._seen: set[str] = set()
        self.stats = {"added": 0, "duplicates": 0, "rejected_full": 0, "reaped": 0}

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pool

    def add(self, envelope: TxEnvelope) -> bool:
        """Admit an envelope.

        Returns False for duplicates (already pooled *or* already reaped —
        a committed transaction must not re-enter).

        Raises:
            MempoolFullError: at capacity.
        """
        if envelope.tx_id in self._seen:
            self.stats["duplicates"] += 1
            return False
        if len(self._pool) >= self.capacity:
            self.stats["rejected_full"] += 1
            raise MempoolFullError(f"mempool at capacity ({self.capacity})")
        self._pool[envelope.tx_id] = envelope
        self._seen.add(envelope.tx_id)
        self.stats["added"] += 1
        return True

    def reap(self, max_txs: int | None = None, max_weight: int | None = None) -> list[TxEnvelope]:
        """Remove and return transactions for a block proposal.

        FIFO order; stops at ``max_txs`` count or before ``max_weight``
        total weight would be exceeded.  A single transaction heavier than
        ``max_weight`` is skipped (left pooled) rather than blocking the
        queue — mirroring a block gas limit.
        """
        batch: list[TxEnvelope] = []
        weight = 0
        skipped: list[TxEnvelope] = []
        while self._pool:
            if max_txs is not None and len(batch) >= max_txs:
                break
            tx_id, envelope = next(iter(self._pool.items()))
            if max_weight is not None and weight + envelope.weight > max_weight:
                if envelope.weight > max_weight:
                    # Individually oversized: set aside so the rest can flow.
                    self._pool.pop(tx_id)
                    skipped.append(envelope)
                    continue
                break
            self._pool.pop(tx_id)
            batch.append(envelope)
            weight += envelope.weight
        for envelope in skipped:
            self._pool[envelope.tx_id] = envelope
        self.stats["reaped"] += len(batch)
        return batch

    def peek(
        self,
        max_txs: int | None = None,
        max_weight: int | None = None,
        exclude: set[str] | None = None,
    ) -> list[TxEnvelope]:
        """Like :meth:`reap` but non-destructive.

        Proposal assembly uses this so that a proposal losing a round-skip
        race does not strand its transactions: they stay pooled until a
        block containing them actually commits (:meth:`remove`).
        """
        exclude = exclude or set()
        batch: list[TxEnvelope] = []
        weight = 0
        for tx_id, envelope in self._pool.items():
            if tx_id in exclude:
                continue
            if max_txs is not None and len(batch) >= max_txs:
                break
            if max_weight is not None and weight + envelope.weight > max_weight:
                if envelope.weight > max_weight:
                    continue  # individually oversized: unschedulable, skip
                break
            batch.append(envelope)
            weight += envelope.weight
        return batch

    def remove(self, tx_ids: list[str]) -> None:
        """Drop transactions that were committed via another node's block."""
        for tx_id in tx_ids:
            self._pool.pop(tx_id, None)
            self._seen.add(tx_id)

    def flush_volatile(self) -> None:
        """Simulate a crash: resident transactions are lost, dedup memory
        (backed by the chain itself) survives only for committed ids —
        so we keep ``_seen`` intact for reaped ids but drop pending ones."""
        pending = set(self._pool)
        self._seen -= pending
        self._pool.clear()

    def pending_ids(self) -> list[str]:
        return list(self._pool)
