"""Per-node mempool: admission, dedup, and block reaping."""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import MempoolFullError
from repro.consensus.types import TxEnvelope


class Mempool:
    """FIFO transaction pool with id-dedup and weight-bounded reaping.

    Args:
        capacity: maximum resident transactions; beyond it, adds raise
            :class:`MempoolFullError` (clients are expected to retry).
        seen_capacity: bound on the reaped-id dedup memory (defaults to
            4x ``capacity``).  The memory used to grow without bound for
            the life of the node; it is now a FIFO window — old enough
            ids fall out, which is safe because the consensus layer keeps
            its own committed-id set and re-gossip of long-committed
            transactions dies there.  Within the window, a reaped or
            committed transaction still cannot re-enter the pool.
    """

    def __init__(self, capacity: int = 100_000, seen_capacity: int | None = None):
        self.capacity = capacity
        self.seen_capacity = seen_capacity if seen_capacity is not None else 4 * capacity
        if self.seen_capacity < 1:
            raise ValueError("seen_capacity must be >= 1")
        self._pool: "OrderedDict[str, TxEnvelope]" = OrderedDict()
        #: Reaped/committed ids only (pooled ids are their own dedup via
        #: ``_pool``); insertion-ordered so eviction drops the oldest.
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.stats = {"added": 0, "duplicates": 0, "rejected_full": 0, "reaped": 0}
        #: Optional :class:`~repro.telemetry.Telemetry` (set by the cluster).
        self.telemetry = None
        self.telemetry_label = ""
        self._tel_handles: tuple | None = None

    def _instruments(self, tel) -> tuple:
        """(depth gauge, dedup counter, reap histogram), resolved once —
        the registry lookup is label-tuple hashing, far too heavy for the
        per-add path."""
        handles = self._tel_handles
        if handles is None or handles[0] is not tel or handles[1] != self.telemetry_label:
            label = self.telemetry_label
            handles = (
                tel,
                label,
                tel.gauge("mempool_depth", node=label),
                tel.counter("mempool_dedup_hits", node=label),
                tel.histogram("mempool_reap_batch", node=label),
            )
            self._tel_handles = handles
        return handles

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pool

    def seen_size(self) -> int:
        """Resident dedup-memory entries (bounded by ``seen_capacity``)."""
        return len(self._seen)

    def _remember(self, tx_ids) -> None:
        """Record reaped/committed ids, then trim the window once for the
        whole batch (ids arrive a block at a time)."""
        seen = self._seen
        for tx_id in tx_ids:
            seen[tx_id] = None
            seen.move_to_end(tx_id)
        while len(seen) > self.seen_capacity:
            seen.popitem(last=False)

    def add(self, envelope: TxEnvelope) -> bool:
        """Admit an envelope.

        Returns False for duplicates (already pooled *or* already reaped —
        a committed transaction must not re-enter).

        Raises:
            MempoolFullError: at capacity.
        """
        tel = self.telemetry
        observing = tel is not None and tel.enabled
        if envelope.tx_id in self._pool or envelope.tx_id in self._seen:
            self.stats["duplicates"] += 1
            if observing:
                self._instruments(tel)[3].inc()
            return False
        if len(self._pool) >= self.capacity:
            self.stats["rejected_full"] += 1
            raise MempoolFullError(f"mempool at capacity ({self.capacity})")
        self._pool[envelope.tx_id] = envelope
        self.stats["added"] += 1
        if observing:
            self._instruments(tel)[2].set(len(self._pool))
            if envelope.trace_flags & 1:
                tel.tracer.event(
                    envelope.tx_id, "mempool_admit", node=self.telemetry_label
                )
        return True

    def reap(self, max_txs: int | None = None, max_weight: int | None = None) -> list[TxEnvelope]:
        """Remove and return transactions for a block proposal.

        FIFO order; stops at ``max_txs`` count or before ``max_weight``
        total weight would be exceeded.  A single transaction heavier than
        ``max_weight`` is skipped (left pooled) rather than blocking the
        queue — mirroring a block gas limit.
        """
        # The head pop is a single C-level ``popitem(last=False)``; the
        # previous implementation materialised a fresh ``items()`` view
        # iterator and re-hashed the head id per reaped transaction.  The
        # dedup-window bookkeeping moved out of the loop: ids are recorded
        # in one pass and the window trimmed once per reap, not per tx.
        batch: list[TxEnvelope] = []
        weight = 0
        skipped: list[TxEnvelope] = []
        pool = self._pool
        while pool:
            if max_txs is not None and len(batch) >= max_txs:
                break
            tx_id, envelope = pool.popitem(last=False)
            if max_weight is not None and weight + envelope.weight > max_weight:
                if envelope.weight > max_weight:
                    # Individually oversized: set aside so the rest can flow.
                    skipped.append(envelope)
                    continue
                # Doesn't fit this block: back to the head, stop reaping.
                pool[tx_id] = envelope
                pool.move_to_end(tx_id, last=False)
                break
            batch.append(envelope)
            weight += envelope.weight
        for envelope in skipped:
            pool[envelope.tx_id] = envelope
        self._remember(envelope.tx_id for envelope in batch)
        self.stats["reaped"] += len(batch)
        tel = self.telemetry
        if tel is not None and tel.enabled and batch:
            handles = self._instruments(tel)
            handles[2].set(len(pool))
            handles[4].observe(len(batch))
        return batch

    def peek(
        self,
        max_txs: int | None = None,
        max_weight: int | None = None,
        exclude: set[str] | None = None,
    ) -> list[TxEnvelope]:
        """Like :meth:`reap` but non-destructive.

        Proposal assembly uses this so that a proposal losing a round-skip
        race does not strand its transactions: they stay pooled until a
        block containing them actually commits (:meth:`remove`).
        """
        exclude = exclude or set()
        batch: list[TxEnvelope] = []
        weight = 0
        for tx_id, envelope in self._pool.items():
            if tx_id in exclude:
                continue
            if max_txs is not None and len(batch) >= max_txs:
                break
            if max_weight is not None and weight + envelope.weight > max_weight:
                if envelope.weight > max_weight:
                    continue  # individually oversized: unschedulable, skip
                break
            batch.append(envelope)
            weight += envelope.weight
        return batch

    def remove(self, tx_ids: list[str]) -> None:
        """Drop transactions that were committed via another node's block."""
        for tx_id in tx_ids:
            self._pool.pop(tx_id, None)
        self._remember(tx_ids)

    def flush_volatile(self) -> None:
        """Simulate a crash: resident transactions are lost, dedup memory
        (backed by the chain itself) survives for reaped/committed ids —
        pending ids were never in it, so clearing the pool is the loss."""
        self._pool.clear()

    def pending_ids(self) -> list[str]:
        return list(self._pool)

    def pending_envelopes(self) -> list[TxEnvelope]:
        """Resident (admitted, uncommitted) envelopes in FIFO order."""
        return list(self._pool.values())
