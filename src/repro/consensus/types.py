"""Consensus data types: envelopes, blocks, votes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_document


@dataclass(frozen=True)
class TxEnvelope:
    """A transaction as the consensus layer sees it: opaque payload + id.

    ``size_bytes`` is the canonical serialised size (drives network and
    block-assembly costs); ``weight`` is a protocol-specific cost unit
    (gas for the Ethereum baseline, validation cost units for SmartchainDB).
    """

    tx_id: str
    payload: Any
    size_bytes: int
    weight: int = 1
    submitted_at: float = 0.0
    #: Trace context carried across gossip and shard boundaries.  Bit 0
    #: (:data:`repro.telemetry.TRACE_SAMPLED`) marks a sampled lifecycle
    #: trace, so hot paths learn "is this tx traced?" from one bit test
    #: instead of a tracer lookup.  Excluded from block identity (block
    #: ids hash tx_ids only), so sampling config can never fork consensus.
    trace_flags: int = 0


@dataclass(frozen=True)
class Block:
    """A proposed or committed block."""

    height: int
    round: int
    proposer: str
    transactions: tuple[TxEnvelope, ...]
    previous_id: str
    block_id: str = field(default="")

    @staticmethod
    def build(
        height: int,
        round_number: int,
        proposer: str,
        transactions: list[TxEnvelope],
        previous_id: str,
    ) -> "Block":
        """Construct a block, deriving its content-addressed id.

        The id is a *value* identity — height, parent, and transaction
        list — deliberately excluding the round and proposer.  A block
        re-proposed in a later round (the Tendermint lock rule's liveness
        path) or independently assembled by two proposers with identical
        content is the *same* block: votes may split across round buckets
        but every replica that commits it records one id and reaches one
        state.
        """
        block_id = hash_document(
            {
                "height": height,
                "previous": previous_id,
                "txs": [envelope.tx_id for envelope in transactions],
            }
        )
        return Block(
            height=height,
            round=round_number,
            proposer=proposer,
            transactions=tuple(transactions),
            previous_id=previous_id,
            block_id=block_id,
        )

    @property
    def size_bytes(self) -> int:
        """Approximate wire size (header + payloads)."""
        return 512 + sum(envelope.size_bytes for envelope in self.transactions)


#: Vote phases.  Tendermint names them prevote/precommit; IBFT prepare/commit.
PREVOTE = "prevote"
PRECOMMIT = "precommit"

#: Sentinel block id for nil votes (timeout rounds).
NIL = "<nil>"


@dataclass(frozen=True)
class Vote:
    """A validator's vote for a block (or nil) in one phase of one round.

    Non-nil precommits carry an Ed25519 signature over
    :func:`precommit_message` — a quorum of them is a *commit
    certificate*, the transferable proof a catch-up server attaches to
    each block so a recovering node can verify a served prefix instead
    of trusting its peer.
    """

    phase: str
    height: int
    round: int
    block_id: str
    voter: str
    sig: str = ""


def precommit_message(height: int, round_number: int, block_id: str) -> bytes:
    """Canonical bytes a precommit signature covers.

    The round is part of the message: a commit certificate is a quorum of
    precommits from *one* round (Tendermint's commit rule) — mixing
    same-block precommits across rounds would certify a quorum that never
    existed at any single round.
    """
    return f"precommit|{height}|{round_number}|{block_id}".encode()
