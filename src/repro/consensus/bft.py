"""Message-level BFT consensus engine.

One engine serves both consensus protocols the paper's evaluation uses:

* **Tendermint** (SmartchainDB side): proposer rotation, prevote/precommit
  phases with 2/3 quorums, and BigchainDB's *blockchain pipelining* — the
  proposer of height H+1 may propose as soon as it observes a prevote
  quorum for H, without waiting for H to finalise.
* **Istanbul BFT** (Quorum / ETH-SC side): the same two-phase quorum
  structure (PRE-PREPARE/PREPARE/COMMIT maps onto proposal/prevote/
  precommit), *no* pipelining, and a minimum block period.

The engine is crash-fault tolerant: crashed validators receive nothing,
lose volatile state (mempool, votes) and catch up from peers on recovery.
Liveness needs > 2/3 of validators online, matching the paper's BFT
threshold discussion in Section 4.2.1.

It is also hardened against the byzantine fault family the chaos
harness injects (:mod:`repro.consensus.byzantine`): quorum tallies
count *validators*, never messages (a double-voter's first vote per
(phase, height, round) is the only one that counts); votes authenticate
their wire sender (``vote.voter`` must equal the sending node — votes
are not relayed in this protocol); proposals are accepted only from the
due proposer of their (height, round) and must extend this node's
chain; and an equivocating proposer's rival blocks are retained side by
side so whichever id earns an honest quorum can still commit, while the
misbehavior itself lands in the validator's ``evidence`` log.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.consensus.abci import Application
from repro.consensus.mempool import Mempool
from repro.consensus.types import (
    NIL,
    PRECOMMIT,
    PREVOTE,
    Block,
    TxEnvelope,
    Vote,
    precommit_message,
)
from repro.crypto.keys import keypair_from_string, verify_signature
from repro.durability.recovery import block_record
from repro.sim.events import EventHandle, EventLoop
from repro.sim.network import Message, Network

GENESIS_ID = "0" * 64

#: Cap on the per-validator misbehavior evidence log: a vote-spamming
#: byzantine peer must not grow honest memory without bound.
EVIDENCE_LIMIT = 512


@dataclass
class BftConfig:
    """Protocol parameters.

    Attributes:
        max_block_txs: cap on transactions per block (None = unbounded).
        max_block_weight: cap on summed envelope weight per block — the
            block gas limit for the Ethereum baseline (None = unbounded).
        pipelining: BigchainDB-style overlap of voting and finalisation.
        propose_timeout: seconds before a round is skipped to the next
            proposer (crash liveness).
        min_block_interval: minimum spacing between a node's consecutive
            proposals (IBFT block period; 0 for Tendermint).
        vote_size_bytes: wire size of votes.
    """

    max_block_txs: int | None = 32
    max_block_weight: int | None = None
    pipelining: bool = True
    propose_timeout: float = 1.0
    min_block_interval: float = 0.0
    vote_size_bytes: int = 128
    #: Bound on the per-validator CheckTx verdict memo (see
    #: ``Validator.check_tx_cached``).
    check_memo_size: int = 4096


@dataclass
class CommitRecord:
    """Commit metadata exposed to metric collectors."""

    block: Block
    committed_at: float
    node_id: str


class Validator:
    """One consensus participant: state machine + mempool + application."""

    def __init__(
        self,
        node_id: str,
        engine: "BftEngine",
        application: Application,
    ):
        self.node_id = node_id
        self.engine = engine
        self.app = application
        self.mempool = Mempool()
        self.height = 1
        self.round = 0
        self.chain: list[Block] = []
        self.last_block_id = GENESIS_ID
        # Volatile consensus state.  Proposals key (height, round) ->
        # {block_id -> Block}: under an equivocating proposer two rival
        # blocks legitimately coexist for one round, and commit must be
        # able to resolve whichever id a quorum lands on.
        self._proposals: dict[tuple[int, int], dict[str, Block]] = {}
        self._votes: dict[tuple[str, int, int, str], set[str]] = {}
        #: First vote seen per (phase, height, round) per voter — the
        #: per-validator half of quorum accounting.  A conflicting second
        #: vote is double-voting evidence and never counts.
        self._first_votes: dict[tuple[str, int, int], dict[str, str]] = {}
        self._prevoted: set[tuple[int, int]] = set()
        self._precommitted: set[tuple[int, int]] = set()
        self._committed_ids: set[str] = set()
        self._proposed_rounds: set[tuple[int, int]] = set()
        #: Tendermint lock rule: once this validator observes a prevote
        #: quorum (polka) for a block, it locks on it — later rounds at
        #: the same height prevote NIL against any *different* block, and
        #: the lock only moves to a block with a newer polka.  Without it,
        #: two rounds at one height can each assemble a quorum for a
        #: different block and fork the chain (found by the chaos harness
        #: once lane-parallel validation tightened the vote races).  Like
        #: Tendermint's write-ahead consensus state, the lock survives
        #: crashes — a recovering validator that forgot it could join a
        #: second quorum and recreate the fork.
        self._locked_round = -1
        self._locked_block: Block | None = None
        #: Optional :class:`~repro.durability.node.NodeDurability` (set
        #: by the cluster in durable deployments).  The lock rule's
        #: crash-survival then means what it says: lock adoptions and
        #: applied blocks are journaled through the WAL, and a node
        #: rebuilt purely from its disk restores them
        #: (:meth:`restore_durable`) instead of trusting process memory.
        self.persistence = None
        self._timeout_handle: EventHandle | None = None
        self._last_propose_time = float("-inf")
        self._catchup_requested_at = float("-inf")
        #: CheckTx verdict memo: tx_id -> (payload object, verdict).  A hit
        #: requires the memoised payload to be the *same object* (``is``)
        #: as the envelope's — the same identity guard the validation
        #: cache uses, so a forged body reusing a known id re-validates
        #: instead of riding a cached verdict.  Admission already ran
        #: CheckTx on every transaction, so proposal assembly and block
        #: validation become memo lookups.
        self._check_memo: "OrderedDict[str, tuple[Any, bool]]" = OrderedDict()
        self.check_stats = {"calls": 0, "memo_hits": 0, "app_checks": 0}
        #: Optional :class:`~repro.consensus.byzantine.ByzantineBehavior`
        #: (installed by the fault plane's mark-byzantine control): when
        #: set, this node *lies* — the behavior rewrites its outbound
        #: proposals/votes and may swallow inbound traffic.  The honest
        #: round machine below never consults it for its own decisions.
        self.byzantine = None
        #: Observed peer misbehavior (forged votes, double votes,
        #: equivocating proposals), bounded by ``EVIDENCE_LIMIT``.
        self.evidence: list[dict] = []
        #: Deterministic per-validator signing identity (public half
        #: derivable by every peer): non-nil precommits are signed, and a
        #: quorum of those signatures is the commit certificate catch-up
        #: serves alongside each block.
        self.keypair = keypair_from_string(f"validator:{node_id}")
        #: (height, round, block_id) -> {voter: precommit signature},
        #: harvested by the vote tally; volatile like the tally itself.
        self._precommit_sigs: dict[tuple[int, int, str], dict[str, str]] = {}
        #: height -> commit certificate for every block this node
        #: committed (assembled locally or adopted from verified
        #: catch-up); journaled with the block record, so a restarted
        #: node can keep serving verifiable catch-up.
        self.commit_certs: dict[int, dict] = {}
        #: Optional :class:`~repro.telemetry.Telemetry` (set by the
        #: cluster); None on bare engines, so consensus-only tests pay
        #: nothing.
        self.telemetry = None
        self.telemetry_label = node_id
        #: Sim time this height's work window opened (first pending work
        #: after the previous commit) — the height-duration histogram's
        #: start point.
        self._height_started_at: float | None = None

    # -- helpers ---------------------------------------------------------------

    @property
    def _loop(self) -> EventLoop:
        return self.engine.loop

    @property
    def _network(self) -> Network:
        return self.engine.network

    def _broadcast(self, kind: str, payload, size_bytes: int) -> None:
        self._network.broadcast(self.node_id, kind, payload, size_bytes)

    def _quorum(self) -> int:
        n = len(self.engine.validators)
        return (2 * n) // 3 + 1

    def is_proposer(self, height: int, round_number: int) -> bool:
        order = self.engine.validator_order
        return order[(height + round_number) % len(order)] == self.node_id

    # -- batched application checks ---------------------------------------------

    def check_tx_cached(self, envelope: TxEnvelope) -> bool:
        """``app.check_tx`` behind the bounded identity-guarded memo."""
        return self._check_batch([envelope])[0]

    def _check_batch(self, envelopes: list[TxEnvelope]) -> list[bool]:
        """Memoised verdicts for many envelopes, batch-checking the misses.

        Misses go through the application's optional ``check_block`` hook
        (batched signature verification) when it exists, else through
        per-envelope ``check_tx``.
        """
        self.check_stats["calls"] += len(envelopes)
        memo = self._check_memo
        verdicts: list[bool | None] = [None] * len(envelopes)
        misses: list[int] = []
        for index, envelope in enumerate(envelopes):
            entry = memo.get(envelope.tx_id)
            if entry is not None and entry[0] is envelope.payload:
                memo.move_to_end(envelope.tx_id)
                self.check_stats["memo_hits"] += 1
                verdicts[index] = entry[1]
            else:
                misses.append(index)
        if misses:
            self.check_stats["app_checks"] += len(misses)
            check_block = getattr(self.app, "check_block", None)
            if check_block is not None and len(misses) > 1:
                fresh = check_block([envelopes[index] for index in misses])
            else:
                fresh = [self.app.check_tx(envelopes[index]) for index in misses]
            limit = self.engine.config.check_memo_size
            for index, verdict in zip(misses, fresh):
                envelope = envelopes[index]
                verdicts[index] = verdict
                memo[envelope.tx_id] = (envelope.payload, verdict)
                memo.move_to_end(envelope.tx_id)
            while len(memo) > limit:
                memo.popitem(last=False)
        return [bool(verdict) for verdict in verdicts]

    def _block_validation_cost(self, envelopes: list[TxEnvelope]) -> float:
        """Simulated block-validation seconds: lane-parallel when the
        application schedules conflict-free lanes, serial sum otherwise."""
        hook = getattr(self.app, "block_validation_cost", None)
        if hook is not None:
            return hook(envelopes)
        return sum(self.app.execution_cost(envelope) for envelope in envelopes)

    # -- transaction intake ------------------------------------------------------

    def submit_transaction(self, envelope: TxEnvelope, gossip: bool = True) -> bool:
        """Receiver-node intake: admit locally, then gossip to peers."""
        if not self.check_tx_cached(envelope):
            return False
        if envelope.tx_id in self._committed_ids:
            return False
        added = self.mempool.add(envelope)
        if added and self._height_started_at is None:
            self._height_started_at = self._loop.clock.now
        if added and gossip:
            self._broadcast("TX", envelope, envelope.size_bytes)
        self._kick_proposer()
        return added

    def _kick_proposer(self) -> None:
        # New work arrived: arm the liveness timeout and, if due, propose.
        self._schedule_round_timeout()
        if self.is_proposer(self.height, self.round):
            self.maybe_propose()

    # -- proposing ----------------------------------------------------------------

    def maybe_propose(self) -> None:
        """Propose a block if this node is the due proposer and work exists."""
        if self.engine.network.is_crashed(self.node_id):
            return
        if (self.height, self.round) in self._proposed_rounds:
            return
        if not self.is_proposer(self.height, self.round):
            return
        if self._locked_block is not None and self._locked_block.height == self.height:
            # Locked proposer: re-propose the locked *value* at the
            # current round — same parent and transactions, hence the same
            # value-based block id, so peers locked on it prevote it and
            # a fresh round can finish what the interrupted one started.
            # Proposing new content here would deadlock against the lock.
            locked = self._locked_block
            block = Block.build(
                self.height,
                self.round,
                self.node_id,
                list(locked.transactions),
                locked.previous_id,
            )
            self._proposed_rounds.add((self.height, self.round))
            self._last_propose_time = self._loop.clock.now
            self._loop.schedule_in(0.0, lambda: self._publish_proposal(block))
            return
        if len(self.mempool) == 0:
            return
        now = self._loop.clock.now
        earliest = self._last_propose_time + self.engine.config.min_block_interval
        if now < earliest:
            self._loop.schedule_at(earliest, self.maybe_propose)
            return
        # Non-destructive assembly: transactions leave the pool only when
        # a block containing them commits.
        batch = self.mempool.peek(
            max_txs=self.engine.config.max_block_txs,
            max_weight=self.engine.config.max_block_weight,
            exclude=self._committed_ids,
        )
        if not batch:
            return
        block = Block.build(self.height, self.round, self.node_id, batch, self.last_block_id)
        self._proposed_rounds.add((self.height, self.round))
        self._last_propose_time = now
        # Proposer pays block assembly/execution cost before the proposal
        # hits the wire (Quorum executes transactions while building);
        # conflict-free transactions execute in parallel lanes.
        assembly_cost = self._block_validation_cost(batch)
        self._loop.schedule_in(
            assembly_cost,
            lambda: self._publish_proposal(block),
        )

    def _publish_proposal(self, block: Block) -> None:
        if self.engine.network.is_crashed(self.node_id):
            return
        if self.byzantine is not None and self.byzantine.publish_proposal(self, block):
            return
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.histogram("consensus_block_txs", node=self.telemetry_label).observe(
                len(block.transactions)
            )
            for envelope in block.transactions:
                if envelope.trace_flags & 1:
                    tel.tracer.event(
                        envelope.tx_id,
                        "consensus_propose",
                        node=self.telemetry_label,
                        height=block.height,
                        round=block.round,
                    )
        self._broadcast("PROPOSAL", block, block.size_bytes)
        self._handle_proposal(block, self.node_id)

    # -- message handling -----------------------------------------------------------

    def _record_evidence(self, kind: str, **fields: Any) -> None:
        """Log one observed misbehavior (bounded; diagnostics only —
        safety never depends on evidence, only on the checks that
        produced it)."""
        if len(self.evidence) < EVIDENCE_LIMIT:
            self.evidence.append({"kind": kind, **fields})

    def handle_message(self, message: Message) -> None:
        """Network entry point."""
        if self.byzantine is not None and self.byzantine.drop_inbound(self, message):
            return
        kind = message.kind
        if kind == "TX":
            envelope: TxEnvelope = message.payload
            if envelope.tx_id not in self._committed_ids:
                try:
                    if self.check_tx_cached(envelope):
                        self.mempool.add(envelope)
                        self._kick_proposer()
                except Exception:
                    pass
        elif kind == "PROPOSAL":
            self._handle_proposal(message.payload, message.sender)
        elif kind == "VOTE":
            self._handle_vote(message.payload, message.sender)
        elif kind == "CATCHUP_REQUEST":
            self._handle_catchup_request(message.payload, message.sender)
        elif kind == "CATCHUP_BLOCKS":
            self._handle_catchup_blocks(message.payload, message.sender)

    def _handle_proposal(self, block: Block, sender: str | None = None) -> None:
        if block.height < self.height:
            return
        order = self.engine.validator_order
        due = order[(block.height + block.round) % len(order)]
        if block.proposer != due or (sender is not None and sender != block.proposer):
            # Proposer legitimacy: only the rotation's due proposer for
            # (height, round) may propose, and proposals are not relayed,
            # so the wire sender must *be* that proposer.  Anything else
            # is an impostor block — drop it and keep the evidence.
            self._record_evidence(
                "forged_proposal",
                height=block.height,
                round=block.round,
                proposer=block.proposer,
                sender=sender,
                block_id=block.block_id,
            )
            return
        slot = self._proposals.setdefault((block.height, block.round), {})
        if block.block_id not in slot:
            if slot:
                # Equivocation: a second, different block from the due
                # proposer at one (height, round).  Both are retained —
                # commit resolves whichever id earns a quorum — but this
                # node's single prevote (below) already went to the
                # first-seen sibling, so the proposer cannot mint extra
                # voting power by multiplying blocks.
                self._record_evidence(
                    "equivocation",
                    height=block.height,
                    round=block.round,
                    proposer=block.proposer,
                    block_ids=sorted([*slot, block.block_id]),
                )
            slot[block.block_id] = block
        if block.height > self.height:
            self._request_catchup(block.proposer)
            return
        if block.round > self.round:
            # Round join: a proposal from a later round is proof the
            # cluster moved on; vote there instead of splitting quorums
            # across rounds.
            self.round = block.round
        elif block.round < self.round and not (
            self._locked_block is not None
            and self._locked_block.block_id == block.block_id
        ):
            # Stale round: never prevote it (two live rounds at one height
            # is how a height forks), unless it is exactly our locked
            # block — those prevotes top up the bucket the lock came from.
            return
        self._schedule_round_timeout()
        key = (block.height, block.round)
        if key in self._prevoted:
            return
        self._prevoted.add(key)
        # Validation compute before prevoting: every peer re-validates the
        # block's transactions (the paper's second validation set).  The
        # simulated charge packs conflict-free transactions into parallel
        # lanes; the real compute runs signature checks batch-first and
        # memo-skips transactions this node already admitted.
        validation_cost = self._block_validation_cost(block.transactions)
        # A block must extend *this* node's chain: a proposal whose parent
        # is not our last committed block earns a NIL prevote (an honest
        # proposer at our height always builds on the same parent we hold,
        # so only a lying proposer trips this).
        valid = block.previous_id == self.last_block_id and all(
            self._check_batch(block.transactions)
        )
        block_id = block.block_id if valid else NIL
        if (
            block_id != NIL
            and self._locked_block is not None
            and self._locked_block.height == block.height
            and self._locked_block.block_id != block.block_id
        ):
            # Locked on a different block at this height: refuse to help a
            # second quorum form (the lock rule's safety half).
            block_id = NIL

        def send_prevote() -> None:
            if self.engine.network.is_crashed(self.node_id):
                return
            self._send_vote(Vote(PREVOTE, block.height, block.round, block_id, self.node_id))

        self._loop.schedule_in(validation_cost, send_prevote)

    def _send_vote(self, vote: Vote) -> None:
        """Broadcast one of this node's votes and tally it locally.

        The byzantine hook may rewrite the outbound set — withhold it,
        duplicate it, or pair it with a conflicting vote — but the local
        tally always counts the honest original, so a lying node's own
        state machine stays coherent."""
        outgoing = (
            [vote]
            if self.byzantine is None
            else self.byzantine.outgoing_votes(self, vote)
        )
        for item in outgoing:
            self._broadcast("VOTE", item, self.engine.config.vote_size_bytes)
        self._handle_vote(vote, self.node_id)

    def _handle_vote(self, vote: Vote, sender: str) -> None:
        if vote.voter != sender:
            # Vote-sender authentication: votes are never relayed in this
            # protocol, so a vote claiming a third validator's identity is
            # a forgery by the wire sender.  Without this check a single
            # byzantine node could mint a full quorum of phantom voters.
            self._record_evidence(
                "forged_vote",
                phase=vote.phase,
                height=vote.height,
                round=vote.round,
                voter=vote.voter,
                sender=sender,
            )
            return
        if vote.height < self.height:
            return
        if vote.height > self.height:
            self._request_catchup(sender)
            return
        if self._tally_vote(vote) < self._quorum() or vote.block_id == NIL:
            return
        if vote.phase == PREVOTE:
            self._on_prevote_quorum(vote)
        else:
            self._on_precommit_quorum(vote)

    def _tally_vote(self, vote: Vote) -> int:
        """Count a vote into its (phase, height, round, block) bucket.

        Quorum accounting is per *validator*, never per message: each
        validator contributes at most one vote per (phase, height,
        round) — the first one seen.  A conflicting second vote is
        double-voting evidence and counts for nothing; a re-delivered
        duplicate adds nothing to the bucket (sets dedupe it), so no
        flood of copies can assemble a quorum.  Returns the bucket's
        voter count after the vote (0 when it was discarded)."""
        slot = self._first_votes.setdefault((vote.phase, vote.height, vote.round), {})
        recorded = slot.get(vote.voter)
        if recorded is None:
            slot[vote.voter] = vote.block_id
            if vote.phase == PRECOMMIT and vote.block_id != NIL and vote.sig:
                self._precommit_sigs.setdefault(
                    (vote.height, vote.round, vote.block_id), {}
                )[vote.voter] = vote.sig
        elif recorded != vote.block_id:
            self._record_evidence(
                "double_vote",
                phase=vote.phase,
                height=vote.height,
                round=vote.round,
                voter=vote.voter,
                block_ids=sorted([recorded, vote.block_id]),
            )
            return 0
        key = (vote.phase, vote.height, vote.round, vote.block_id)
        voters = self._votes.setdefault(key, set())
        voters.add(vote.voter)
        return len(voters)

    def _on_prevote_quorum(self, vote: Vote) -> None:
        key = (vote.height, vote.round)
        if (
            vote.height == self.height
            and vote.round >= self._locked_round
            and (
                vote.round >= self.round
                or (
                    self._locked_block is not None
                    and self._locked_block.block_id == vote.block_id
                )
            )
        ):
            # A polka at (or refreshing) the current state: adopt the
            # lock.  Only a later polka may move it to a different block,
            # and a polka from an abandoned round never *creates* a lock —
            # adopting one would precommit a value the node already voted
            # past, the other entrance to the height-fork race.
            proposal = self._proposals.get(key, {}).get(vote.block_id)
            if proposal is not None:
                self._locked_block = proposal
                self._locked_round = vote.round
                tel = self.telemetry
                if tel is not None and tel.enabled:
                    tel.counter(
                        "consensus_lock_adoptions", node=self.telemetry_label
                    ).inc()
                    tel.flight_event(
                        self.telemetry_label,
                        "lock_adopt",
                        height=vote.height,
                        round=vote.round,
                        block=vote.block_id[:8],
                    )
                if self.persistence is not None:
                    # Write-ahead consensus state (Tendermint WAL): a
                    # restart-from-disk must see the lock or it could
                    # help a second quorum form at this height.  Forced
                    # past the group cadence — the precommit this lock
                    # licenses broadcasts below, and a vote that outran
                    # its lock's durability is the height-fork race with
                    # a crash in the middle.
                    self.persistence.journal(
                        {"k": "lock", "r": vote.round, "b": block_record(proposal)}
                    )
                    self.persistence.log.flush_now()
        if (
            self._locked_block is None
            or self._locked_block.block_id != vote.block_id
        ):
            # Precommit only what this node is locked on: a stale polka
            # for an abandoned value, or one whose proposal never arrived
            # (so no lock could form), earns no precommit — an unlocked
            # precommitter is free to help a rival quorum later, which is
            # the height-fork race all over again.
            return
        if key not in self._precommitted:
            self._precommitted.add(key)
            self._send_vote(
                Vote(
                    PRECOMMIT,
                    vote.height,
                    vote.round,
                    vote.block_id,
                    self.node_id,
                    sig=self.keypair.sign(
                        precommit_message(vote.height, vote.round, vote.block_id)
                    ),
                )
            )
        # Blockchain pipelining: the next proposer may start assembling
        # height H+1 as soon as H has a prevote quorum.
        if self.engine.config.pipelining and self.is_proposer(vote.height + 1, 0):
            block = self._proposals.get((vote.height, vote.round), {}).get(vote.block_id)
            if block is not None:
                self._pipeline_next(block)

    def _pipeline_next(self, parent: Block) -> None:
        """Pre-assemble the next block optimistically (commit will publish)."""
        # Nothing to do eagerly beyond kicking the proposer once committed;
        # the speedup is modelled by skipping the post-commit storage wait.
        self._pipeline_ready = parent.height + 1

    def _on_precommit_quorum(self, vote: Vote) -> None:
        if vote.height != self.height:
            return
        block = self._proposals.get((vote.height, vote.round), {}).get(vote.block_id)
        if block is None:
            return
        self._commit_block(block)

    # -- commit ------------------------------------------------------------------

    def _commit_block(self, block: Block) -> None:
        commit_cost = self.app.commit_cost(block)
        pipelined = self.engine.config.pipelining

        def finalize() -> None:
            if self.engine.network.is_crashed(self.node_id):
                return
            if block.height != self.height:
                return
            self._apply_block(block)
            self._cancel_round_timeout()
            # Next height: with pipelining the proposer overlaps storage
            # commit with proposal assembly; without it, it must wait.
            if pipelined:
                self.maybe_propose()
            else:
                self._loop.schedule_in(0.0, self.maybe_propose)
            self._schedule_round_timeout()

        if pipelined:
            # Storage write overlaps the next round: finalize logically now,
            # charge the disk time to the background.
            finalize()
            self._loop.clock  # (storage happens off the critical path)
        else:
            self._loop.schedule_in(commit_cost, finalize)

    def _apply_block(self, block: Block, cert: dict | None = None) -> None:
        # Assemble the commit certificate before volatile vote state is
        # GC'd below: locally committed blocks draw on the tallied
        # precommit signatures, catch-up-applied blocks adopt the cert
        # that was verified on arrival.
        if cert is None:
            cert = self._build_commit_cert(block)
        if cert is not None:
            self.commit_certs[block.height] = cert
        tel = self.telemetry
        if tel is not None and tel.enabled:
            now = self._loop.clock.now
            if self._height_started_at is not None:
                tel.observe_ms(
                    "consensus_height_ms",
                    now - self._height_started_at,
                    node=self.telemetry_label,
                )
            self._height_started_at = None
            tel.counter("consensus_rounds_used", node=self.telemetry_label).inc(
                block.round + 1
            )
            tel.flight_event(
                self.telemetry_label,
                "block_commit",
                height=block.height,
                round=block.round,
                block=block.block_id[:8],
                txs=len(block.transactions),
            )
        delivered = [
            envelope
            for envelope in block.transactions
            if envelope.tx_id not in self._committed_ids and self.app.deliver_tx(envelope)
        ]
        self.app.commit_block(block, delivered)
        self.chain.append(block)
        self.last_block_id = block.block_id
        self.height = block.height + 1
        self.round = 0
        if self._locked_block is not None and self._locked_block.height <= block.height:
            # The locked height is decided (by this block or catch-up).
            self._locked_block = None
            self._locked_round = -1
        self._committed_ids.update(envelope.tx_id for envelope in block.transactions)
        self.mempool.remove([envelope.tx_id for envelope in block.transactions])
        if tel is not None and tel.enabled and len(self.mempool) > 0:
            # Backlogged height: the next height's work window opens now,
            # not at the next submit.
            self._height_started_at = self._loop.clock.now
        self._gc_consensus_state(block.height)
        if self.persistence is not None:
            # Full envelopes ride the record so a restarted node rebuilds
            # the exact chain (same value-based block ids) and can serve
            # catch-up; a decided lock needs no explicit clear — recovery
            # drops any lock at or below the recovered chain height.
            record = {"k": "block", "b": block_record(block)}
            if cert is not None:
                record["cert"] = cert
            self.persistence.journal(record)
        self.engine.record_commit(self.node_id, block)

    def _build_commit_cert(self, block: Block) -> dict | None:
        """Quorum of verified precommit signatures for a committed block.

        Signatures are verified (through the cluster's verdict cache) at
        assembly so a lying voter cannot smuggle an invalid signature
        into the certificate and poison honest catch-up service.
        """
        collected = self._precommit_sigs.get(
            (block.height, block.round, block.block_id), {}
        )
        message = precommit_message(block.height, block.round, block.block_id)
        sigs = {}
        for voter, sig in collected.items():
            public_key = self.engine.public_keys.get(voter)
            if public_key is not None and verify_signature(public_key, message, sig):
                sigs[voter] = sig
        if len(sigs) < self._quorum():
            return None
        return {"h": block.height, "r": block.round, "id": block.block_id, "sigs": sigs}

    def _verify_commit_cert(self, block: Block, cert) -> bool:
        """Is ``cert`` a valid quorum commit certificate for ``block``?"""
        if not isinstance(cert, dict) or cert.get("id") != block.block_id:
            return False
        round_number = cert.get("r")
        sigs = cert.get("sigs")
        if not isinstance(round_number, int) or not isinstance(sigs, dict):
            return False
        validators = set(self.engine.validator_order)
        if not set(sigs) <= validators:
            return False
        message = precommit_message(block.height, round_number, block.block_id)
        valid = sum(
            1
            for voter, sig in sigs.items()
            if verify_signature(self.engine.public_keys[voter], message, sig)
        )
        return valid >= self._quorum()

    def _gc_consensus_state(self, committed_height: int) -> None:
        self._precommit_sigs = {
            key: value
            for key, value in self._precommit_sigs.items()
            if key[0] > committed_height
        }
        self._proposals = {
            key: value for key, value in self._proposals.items() if key[0] > committed_height
        }
        self._votes = {
            key: value for key, value in self._votes.items() if key[1] > committed_height
        }
        self._first_votes = {
            key: value
            for key, value in self._first_votes.items()
            if key[1] > committed_height
        }
        self._prevoted = {key for key in self._prevoted if key[0] > committed_height}
        self._precommitted = {key for key in self._precommitted if key[0] > committed_height}
        self._proposed_rounds = {
            key for key in self._proposed_rounds if key[0] > committed_height
        }

    # -- timeouts & liveness --------------------------------------------------------

    def _has_pending_work(self) -> bool:
        """True if this height still has something to decide."""
        if len(self.mempool) > 0:
            return True
        return any(key[0] == self.height for key in self._proposals)

    def _schedule_round_timeout(self) -> None:
        if self._timeout_handle is not None and not self._timeout_handle.cancelled:
            return
        if not self._has_pending_work():
            # Nothing to decide: stay quiet instead of spinning rounds.
            return
        height, round_number = self.height, self.round
        # Exponential backoff per skipped round (IBFT-style) so that slow
        # block assembly at high gas loads is not perpetually outrun by
        # the round timer.
        timeout = self.engine.config.propose_timeout * (2 ** min(round_number, 6))
        self._timeout_handle = self._loop.schedule_in(
            timeout,
            lambda: self._on_round_timeout(height, round_number),
        )

    def _cancel_round_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    def _on_round_timeout(self, height: int, round_number: int) -> None:
        self._timeout_handle = None
        if self.engine.network.is_crashed(self.node_id):
            return
        if self.height != height or self.round != round_number:
            # Stale timer from before a catch-up/commit.  While it was
            # armed it blocked fresh arming, so it must hand the liveness
            # chain back to the current height — otherwise a node that
            # caught up with a non-empty mempool starves its pending
            # transactions forever (found by the chaos harness).
            self._schedule_round_timeout()
            return
        if not self._has_pending_work():
            return
        # Skip to the next proposer at the same height.
        self.round += 1
        self._schedule_round_timeout()
        self.maybe_propose()

    # -- catch-up ---------------------------------------------------------------------

    def _request_catchup(self, peer: str) -> None:
        if self.byzantine is not None and self.byzantine.suppress_catchup(self):
            return
        now = self._loop.clock.now
        if now - self._catchup_requested_at < 0.5:
            return
        self._catchup_requested_at = now
        self._network.send(self.node_id, peer, "CATCHUP_REQUEST", self.height, 64)

    def _handle_catchup_request(self, from_height: int, sender: str) -> None:
        if self.byzantine is not None and self.byzantine.answer_catchup(
            self, from_height, sender
        ):
            return
        items = [
            {"block": block, "cert": self.commit_certs.get(block.height)}
            for block in self.chain
            if block.height >= from_height
        ]
        if items:
            size = sum(item["block"].size_bytes for item in items)
            self._network.send(self.node_id, sender, "CATCHUP_BLOCKS", items, size)

    def _handle_catchup_blocks(self, items: list[dict], sender: str | None = None) -> None:
        """Adopt a served chain suffix — but only blocks that arrive with
        a valid quorum commit certificate.

        The sync path used to trust whatever prefix its peer served,
        which let a byzantine peer feed a recovering node a forged
        chain (catch-up poisoning).  Now each block must prove that a
        precommit quorum committed *exactly this block id*; the first
        failure stops the walk (later heights cannot chain onto a
        rejected block), records ``forged_catchup`` evidence against
        the sender, and retries catch-up from a different live peer.
        """
        for item in sorted(items, key=lambda entry: entry["block"].height):
            block = item["block"]
            if block.height != self.height or block.previous_id != self.last_block_id:
                continue
            if not self._verify_commit_cert(block, item.get("cert")):
                self._record_evidence(
                    "forged_catchup",
                    sender=sender,
                    height=block.height,
                    block_id=block.block_id,
                )
                self._retry_catchup_elsewhere(sender)
                break
            self._apply_block(block, cert=item["cert"])
        self._schedule_round_timeout()
        self.maybe_propose()

    def _retry_catchup_elsewhere(self, bad_peer: str | None) -> None:
        """Re-request missed blocks from the next live peer that is not
        the one whose answer just failed verification."""
        for peer in self.engine.validator_order:
            if peer in (self.node_id, bad_peer) or self._network.is_crashed(peer):
                continue
            self._catchup_requested_at = float("-inf")
            self._request_catchup(peer)
            return

    # -- crash hooks ---------------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost; durable chain/app state survives.

        The round lock (``_locked_block``/``_locked_round``) deliberately
        survives: it is write-ahead consensus state, and forgetting it on
        recovery would let this validator join a second quorum at its
        locked height.
        """
        self.mempool.flush_volatile()
        self._check_memo.clear()
        self._proposals.clear()
        self._votes.clear()
        self._first_votes.clear()
        self.evidence.clear()
        self._prevoted.clear()
        self._precommitted.clear()
        self._proposed_rounds.clear()
        self._precommit_sigs.clear()
        self._cancel_round_timeout()

    def on_recover(self) -> None:
        """Rejoin: ask a live peer for missed blocks."""
        peers = [node for node in self.engine.validator_order if node != self.node_id]
        for peer in peers:
            if not self._network.is_crashed(peer):
                self._catchup_requested_at = float("-inf")
                self._request_catchup(peer)
                break
        self._schedule_round_timeout()

    # -- durable-state checkpoint / restore -----------------------------------

    def consensus_snapshot(self) -> dict:
        """Serialised durable consensus state (chain + lock) for the
        node's checkpoint provider."""
        lock = None
        if self._locked_block is not None:
            lock = {"r": self._locked_round, "b": block_record(self._locked_block)}
        return {
            "blocks": [block_record(block) for block in self.chain],
            "lock": lock,
            # [height, cert] pairs: canonical JSON requires string keys.
            "certs": [list(item) for item in sorted(self.commit_certs.items())],
        }

    def restore_durable(
        self,
        blocks: list[Block],
        locked_round: int = -1,
        locked_block: Block | None = None,
        certs: dict[int, dict] | None = None,
    ) -> None:
        """Adopt disk-recovered chain and lock state after a restart.

        Volatile state (mempool, votes, proposals, memo) is assumed
        already cleared by :meth:`on_crash`; this resets the durable
        half exactly as the WAL replay reconstructed it.
        """
        self.chain = list(blocks)
        self.last_block_id = blocks[-1].block_id if blocks else GENESIS_ID
        self.height = blocks[-1].height + 1 if blocks else 1
        self.round = 0
        self._committed_ids = {
            envelope.tx_id for block in blocks for envelope in block.transactions
        }
        self._locked_block = locked_block
        self._locked_round = locked_round
        self.commit_certs = dict(certs or {})
        self._last_propose_time = float("-inf")
        self._catchup_requested_at = float("-inf")


class BftEngine:
    """A cluster of validators over one simulated network."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        application_factory: Callable[[str], Application],
        validator_ids: list[str],
        config: BftConfig | None = None,
    ):
        if not validator_ids:
            raise ValueError("need at least one validator")
        self.loop = loop
        self.network = network
        self.config = config or BftConfig()
        self.validator_order = list(validator_ids)
        #: Every peer's signing identity is derivable from its id, so
        #: certificate verification needs no key distribution.
        self.public_keys = {
            node_id: keypair_from_string(f"validator:{node_id}").public_key
            for node_id in validator_ids
        }
        self.validators: dict[str, Validator] = {}
        self.commits: list[CommitRecord] = []
        self._first_commit_heights: set[int] = set()
        self.commit_listeners: list[Callable[[CommitRecord], None]] = []
        for node_id in validator_ids:
            validator = Validator(node_id, self, application_factory(node_id))
            self.validators[node_id] = validator
            network.register(node_id, validator.handle_message)

    def validator(self, node_id: str) -> Validator:
        return self.validators[node_id]

    def record_commit(self, node_id: str, block: Block) -> None:
        """Record the first commit of each height (cluster-level event)."""
        if block.height in self._first_commit_heights:
            return
        self._first_commit_heights.add(block.height)
        record = CommitRecord(block=block, committed_at=self.loop.clock.now, node_id=node_id)
        self.commits.append(record)
        for listener in self.commit_listeners:
            listener(record)

    def committed_envelopes(self) -> list[tuple[TxEnvelope, float]]:
        """All committed transactions with their cluster commit times."""
        out: list[tuple[TxEnvelope, float]] = []
        for record in self.commits:
            for envelope in record.block.transactions:
                out.append((envelope, record.committed_at))
        return out

    def online_power_fraction(self) -> float:
        """Fraction of validators currently online."""
        online = sum(
            1 for node_id in self.validator_order if not self.network.is_crashed(node_id)
        )
        return online / len(self.validator_order)
