"""Istanbul BFT configuration of the BFT engine (Quorum / ETH-SC side).

Quorum's IBFT gives immediate finality with 2n+1/3 agreement, a minimum
block period, and — critically for the evaluation — *sequential* block
finalisation: no pipelining, and every block is bounded by the block gas
limit, so heavy contract transactions directly throttle throughput.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.abci import Application
from repro.consensus.bft import BftConfig, BftEngine
from repro.sim.events import EventLoop
from repro.sim.network import Network

#: Default Quorum-style block gas limit.
DEFAULT_BLOCK_GAS_LIMIT = 10_000_000


def ibft_config(
    block_gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT,
    block_period: float = 1.0,
    propose_timeout: float = 3.0,
) -> BftConfig:
    """Standard IBFT parameters for the baseline network."""
    return BftConfig(
        max_block_txs=None,
        max_block_weight=block_gas_limit,
        pipelining=False,
        propose_timeout=propose_timeout,
        min_block_interval=block_period,
        vote_size_bytes=160,
    )


def make_ibft_cluster(
    loop: EventLoop,
    network: Network,
    application_factory: Callable[[str], Application],
    n_validators: int = 4,
    config: BftConfig | None = None,
) -> BftEngine:
    """Build an ``n_validators``-node Quorum-IBFT cluster."""
    validator_ids = [f"quorum-{index}" for index in range(n_validators)]
    return BftEngine(
        loop=loop,
        network=network,
        application_factory=application_factory,
        validator_ids=validator_ids,
        config=config or ibft_config(),
    )
