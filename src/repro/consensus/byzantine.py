"""Deterministic byzantine validator behaviors.

The crash-fault half of the chaos harness (ISSUE 3/5) never made a node
*lie* — it only made nodes disappear.  This module is the lying half: a
:class:`ByzantineBehavior` installed on a :class:`~repro.consensus.bft.
Validator` (``validator.byzantine = make_behavior(kind)``) intercepts
the node's outbound consensus traffic and, for the stale-replica kind,
its inbound traffic too.  The honest round machine keeps running
underneath; the behavior only rewrites what leaves (or enters) the node,
which keeps every attack expressible as a pure function of state the
simulation already determines — no new randomness, so seeded replay
stays byte-identical.

The four kinds mirror the classic BFT adversary taxonomy:

* ``equivocate`` — the due proposer builds *two* blocks for one
  (height, round) — same transactions, different order, hence different
  value ids — and sends each to a disjoint half of the peer set.  It
  also double-votes both siblings (an equivocating proposer that votes
  honestly would immediately out itself), spamming each vote
  quorum-many times to attack per-message tallies.
* ``double_vote`` — votes for two different block ids in one
  (phase, height, round), again with quorum-many copies of each.
* ``withhold`` — participates in rounds but broadcasts no votes
  (silent-but-alive; the cluster must reach quorum without it).
* ``stale`` — silently stops applying new blocks (drops inbound
  proposals/votes/catch-up and never requests catch-up itself) while
  still answering peers' catch-up requests from its stale chain — the
  lying replica that serves old reads as if they were current.
* ``poison`` — otherwise honest, but answers ``CATCHUP_REQUEST`` with a
  *forged* chain suffix: same heights, same parent linkage, reordered
  transactions (hence different value ids), dressed in the real blocks'
  commit certificates.  A recovering node that trusted its peer would
  adopt the fork; certificate verification rejects every forged block
  (the certificate names the honest block id) and retries elsewhere.

Safety claim under test: with at most ⌊(n−1)/3⌋ concurrently-byzantine
validators per shard, none of these behaviors may make two honest nodes
commit different blocks at one height (``honest_no_divergence``), and
the defenses they probe — per-validator quorum dedupe, vote-sender
authentication, proposer legitimacy, the lock rule — each have a
mutation test proving the invariant fires when they are removed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consensus.types import NIL, Block, Vote
from repro.crypto.hashing import hash_document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.consensus.bft import Validator
    from repro.sim.network import Message

#: Behavior kinds installable through :func:`make_behavior`.
BEHAVIOR_KINDS = ("equivocate", "double_vote", "withhold", "stale", "poison")


class ByzantineBehavior:
    """Hook surface the round machine consults; the base class is an
    honest passthrough so subclasses override only what they corrupt."""

    kind = "honest"

    def outgoing_votes(self, validator: "Validator", vote: Vote) -> list[Vote]:
        """Votes to broadcast in place of ``vote`` (may be empty)."""
        return [vote]

    def publish_proposal(self, validator: "Validator", block: Block) -> bool:
        """Take over proposal publication; True = the behavior sent it."""
        return False

    def drop_inbound(self, validator: "Validator", message: "Message") -> bool:
        """True = silently swallow an inbound message."""
        return False

    def suppress_catchup(self, validator: "Validator") -> bool:
        """True = never ask peers for missed blocks."""
        return False

    def answer_catchup(
        self, validator: "Validator", from_height: int, sender: str
    ) -> bool:
        """Take over answering a peer's catch-up request; True = the
        behavior answered (honest service is skipped)."""
        return False


def sibling_block(block: Block) -> Block | None:
    """A second, different-id block with the same parent and transactions.

    Block ids hash the *ordered* transaction list, so reversing the
    order yields a block every honest validator finds valid — the
    sharpest possible equivocation, because both siblings can win
    honest prevotes.  With fewer than two transactions no distinct
    sibling exists (``None``)."""
    if len(block.transactions) < 2:
        return None
    return Block.build(
        block.height,
        block.round,
        block.proposer,
        list(reversed(block.transactions)),
        block.previous_id,
    )


def conflicting_vote(validator: "Validator", vote: Vote) -> Vote:
    """A vote by the same voter for a *different* block id in the same
    (phase, height, round) — a real rival proposal when one is known,
    else a deterministic fabricated id."""
    slot = validator._proposals.get((vote.height, vote.round), {})
    rival = next((bid for bid in sorted(slot) if bid != vote.block_id), None)
    if rival is None:
        rival = hash_document({"byzantine-rival-of": vote.block_id})
    return Vote(vote.phase, vote.height, vote.round, rival, vote.voter)


class DoubleVoter(ByzantineBehavior):
    """Votes twice per (phase, height, round), quorum-many copies each.

    Against per-validator tallies this is pure noise (plus double-vote
    evidence on every honest node); against a per-*message* tally a
    single double-voter assembles a full quorum alone — the mutation
    test that keeps the dedupe honest."""

    kind = "double_vote"

    def outgoing_votes(self, validator: "Validator", vote: Vote) -> list[Vote]:
        if vote.block_id == NIL:
            return [vote]
        rival = conflicting_vote(validator, vote)
        copies = validator._quorum()
        return [vote] * copies + [rival] * copies


class EquivocatingProposer(DoubleVoter):
    """Sends two same-(height, round) blocks to disjoint peer halves.

    Inherits the double-voting vote stream: a proposer equivocating on
    blocks but voting for only one of them would contain itself."""

    kind = "equivocate"

    def publish_proposal(self, validator: "Validator", block: Block) -> bool:
        network = validator.engine.network
        peers = [
            node
            for node in validator.engine.validator_order
            if node != validator.node_id
        ]
        sibling = sibling_block(block)
        if sibling is None:
            # Not enough transactions for a distinct sibling: fall back to
            # selective disclosure — only half the peers learn the
            # proposal exists at all.
            kept = peers[: max(1, len(peers) // 2)]
            for peer in kept:
                network.send(
                    validator.node_id, peer, "PROPOSAL", block, block.size_bytes
                )
        else:
            mid = len(peers) // 2
            for peer in peers[:mid]:
                network.send(
                    validator.node_id, peer, "PROPOSAL", block, block.size_bytes
                )
            for peer in peers[mid:]:
                network.send(
                    validator.node_id, peer, "PROPOSAL", sibling, sibling.size_bytes
                )
        validator._handle_proposal(block, validator.node_id)
        return True


class VoteWithholder(ByzantineBehavior):
    """Broadcasts no votes at all (its own local tally still counts)."""

    kind = "withhold"

    def outgoing_votes(self, validator: "Validator", vote: Vote) -> list[Vote]:
        return []


class StaleReplica(ByzantineBehavior):
    """Freezes its replica and serves stale reads.

    Drops every inbound message that could advance its chain, never
    requests catch-up, and goes silent on votes — but keeps answering
    ``CATCHUP_REQUEST`` from its (increasingly stale) chain, so lagging
    peers that ask *it* get old-but-honest prefixes."""

    kind = "stale"

    def outgoing_votes(self, validator: "Validator", vote: Vote) -> list[Vote]:
        return []

    def drop_inbound(self, validator: "Validator", message: "Message") -> bool:
        return message.kind in ("TX", "PROPOSAL", "VOTE", "CATCHUP_BLOCKS")

    def suppress_catchup(self, validator: "Validator") -> bool:
        return True


class ChainPoisoner(ByzantineBehavior):
    """Serves forged chain suffixes to recovering peers.

    Votes and proposes honestly — its whole attack is the sync path:
    every ``CATCHUP_REQUEST`` is answered with blocks whose transaction
    order (hence value id) is flipped wherever possible, re-linked into
    a consistent forged suffix, and paired with the *real* blocks'
    commit certificates.  Without certificate verification the victim
    adopts the fork wholesale; with it, the very first forged block
    fails (no quorum ever precommitted that id) and the victim walks
    away with ``forged_catchup`` evidence against this node."""

    kind = "poison"

    def answer_catchup(
        self, validator: "Validator", from_height: int, sender: str
    ) -> bool:
        real = [block for block in validator.chain if block.height >= from_height]
        if not real:
            return True  # nothing to serve; swallow the request
        items = []
        previous = real[0].previous_id
        for block in real:
            transactions = (
                list(reversed(block.transactions))
                if len(block.transactions) > 1
                else list(block.transactions)
            )
            forged = Block.build(
                block.height, block.round, block.proposer, transactions, previous
            )
            previous = forged.block_id
            items.append(
                {"block": forged, "cert": validator.commit_certs.get(block.height)}
            )
        size = sum(item["block"].size_bytes for item in items)
        validator.engine.network.send(
            validator.node_id, sender, "CATCHUP_BLOCKS", items, size
        )
        return True


_REGISTRY = {
    "equivocate": EquivocatingProposer,
    "double_vote": DoubleVoter,
    "withhold": VoteWithholder,
    "stale": StaleReplica,
    "poison": ChainPoisoner,
}


def make_behavior(kind: str) -> ByzantineBehavior:
    """Instantiate one behavior by kind.

    Raises:
        ValueError: for unknown kinds.
    """
    try:
        return _REGISTRY[kind]()
    except KeyError:
        raise ValueError(
            f"unknown byzantine kind {kind!r}; expected one of {BEHAVIOR_KINDS}"
        ) from None
