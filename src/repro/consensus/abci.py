"""Application-blockchain interface.

Tendermint separates consensus from application logic through ABCI; the
paper's Fig. 4 lifecycle maps onto it directly:

* ``check_tx``   — mempool admission on every validator ("secondary set of
  validation checks triggered by the CheckTx function").
* ``deliver_tx`` — the third validation set at block-processing time,
  "before mutating the state".
* ``commit``     — persist the block; for SmartchainDB this is also where
  nested children (RETURNs) are determined and enqueued (Algorithm 3,
  second part).

Implementations must be deterministic: every honest validator processing
the same block must reach the same state.

Beyond the required five methods, the consensus engine probes two
*optional* batching hooks with ``getattr`` (an application that omits them
gets the per-transaction fallback):

* ``check_block(envelopes) -> list[bool]`` — validate a whole block's
  transactions at once.  SmartchainDB uses this to verify every signature
  in the block through one batched random-linear-combination check before
  the per-transaction conditions run.
* ``block_validation_cost(envelopes) -> float`` — simulated seconds to
  validate a block.  SmartchainDB partitions the block into conflict-free
  lanes via the declarative access sets (:mod:`repro.core.parallel`), so
  the block charge is ``max(lane sums)`` instead of ``sum(costs)``.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.consensus.types import Block, TxEnvelope


class Application(Protocol):
    """The state machine replicated by consensus."""

    def check_tx(self, envelope: TxEnvelope) -> bool:
        """Cheap admission check for the mempool.  Must not mutate state."""
        ...

    def deliver_tx(self, envelope: TxEnvelope) -> bool:
        """Full validation against current state; stages the transaction."""
        ...

    def commit_block(self, block: Block, delivered: list[TxEnvelope]) -> None:
        """Persist delivered transactions; run post-commit hooks."""
        ...

    def execution_cost(self, envelope: TxEnvelope) -> float:
        """Simulated seconds of compute to validate/execute the tx."""
        ...

    def commit_cost(self, block: Block) -> float:
        """Simulated seconds to persist a committed block."""
        ...


class NullApplication:
    """Accept-everything application; useful for consensus-only tests."""

    def __init__(self) -> None:
        self.committed: list[Block] = []
        self.delivered: list[str] = []

    def check_tx(self, envelope: TxEnvelope) -> bool:
        return True

    def deliver_tx(self, envelope: TxEnvelope) -> bool:
        self.delivered.append(envelope.tx_id)
        return True

    def commit_block(self, block: Block, delivered: list[TxEnvelope]) -> None:
        self.committed.append(block)

    def execution_cost(self, envelope: TxEnvelope) -> float:
        return 0.0001

    def commit_cost(self, block: Block) -> float:
        return 0.001


def envelope_for(
    payload: Any,
    tx_id: str,
    size_bytes: int,
    weight: int = 1,
    now: float = 0.0,
    trace_flags: int = 0,
) -> TxEnvelope:
    """Convenience constructor for a consensus envelope."""
    return TxEnvelope(
        tx_id=tx_id,
        payload=payload,
        size_bytes=size_bytes,
        weight=weight,
        submitted_at=now,
        trace_flags=trace_flags,
    )
