"""Transaction schema layer: YAML schemas + structural validation."""

from repro.schema.registry import (
    OPERATION_SCHEMAS,
    RESERVED_OPERATIONS,
    SchemaRegistry,
    default_registry,
)
from repro.schema.validator import SchemaValidator, validate_language_key

__all__ = [
    "OPERATION_SCHEMAS",
    "RESERVED_OPERATIONS",
    "SchemaRegistry",
    "SchemaValidator",
    "default_registry",
    "validate_language_key",
]
