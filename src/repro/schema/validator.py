"""JSON-Schema-subset validator for transaction payloads (Algorithm 1).

SmartchainDB's first validation phase checks the *structure* of the JSON
transaction payload against the YAML schema of its type.  This module
implements the schema dialect those definitions use:

``type``, ``properties``, ``required``, ``additionalProperties``,
``items``, ``minItems``/``maxItems``, ``enum``, ``const``, ``pattern``,
``minLength``/``maxLength``, ``minimum``/``maximum``, ``anyOf``,
``allOf``, ``$ref`` into a shared ``definitions`` table, and ``nullable``.

Errors carry a JSON-path-like location so driver users get actionable
messages (e.g. ``outputs[0].amount: expected integer``).
"""

from __future__ import annotations

import re
from typing import Any

from repro.common.errors import SchemaValidationError

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


class SchemaValidator:
    """Validates documents against one root schema with shared definitions.

    Args:
        schema: the root schema dictionary (typically parsed from YAML).
        definitions: optional ``$ref`` target table; defaults to the root
            schema's own ``definitions`` key.
    """

    def __init__(self, schema: dict[str, Any], definitions: dict[str, Any] | None = None):
        if not isinstance(schema, dict):
            raise SchemaValidationError("schema must be a mapping")
        self._schema = schema
        self._definitions = definitions if definitions is not None else schema.get("definitions", {})
        self._pattern_cache: dict[str, re.Pattern[str]] = {}

    # -- public API ---------------------------------------------------------

    def validate(self, document: Any) -> None:
        """Raise :class:`SchemaValidationError` if ``document`` is invalid."""
        self._validate(document, self._schema, "$")

    def is_valid(self, document: Any) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(document)
        except SchemaValidationError:
            return False
        return True

    # -- internals ----------------------------------------------------------

    def _resolve(self, schema: dict[str, Any], path: str) -> dict[str, Any]:
        """Follow a ``$ref`` chain to the concrete schema."""
        seen: set[str] = set()
        while "$ref" in schema:
            ref = schema["$ref"]
            if ref in seen:
                raise SchemaValidationError(f"circular $ref: {ref}", path)
            seen.add(ref)
            name = ref.rsplit("/", 1)[-1]
            target = self._definitions.get(name)
            if target is None:
                raise SchemaValidationError(f"unresolvable $ref: {ref}", path)
            schema = target
        return schema

    def _compiled_pattern(self, pattern: str) -> re.Pattern[str]:
        compiled = self._pattern_cache.get(pattern)
        if compiled is None:
            compiled = re.compile(pattern)
            self._pattern_cache[pattern] = compiled
        return compiled

    def _validate(self, value: Any, schema: dict[str, Any], path: str) -> None:
        schema = self._resolve(schema, path)

        if value is None and schema.get("nullable"):
            return

        if "const" in schema and value != schema["const"]:
            raise SchemaValidationError(f"expected constant {schema['const']!r}, got {value!r}", path)

        if "enum" in schema and value not in schema["enum"]:
            raise SchemaValidationError(f"{value!r} is not one of {schema['enum']!r}", path)

        declared = schema.get("type")
        if declared is not None:
            self._check_type(value, declared, path)

        if "anyOf" in schema:
            self._check_any_of(value, schema["anyOf"], path)
        if "allOf" in schema:
            for index, branch in enumerate(schema["allOf"]):
                self._validate(value, branch, path)

        if isinstance(value, str):
            self._check_string(value, schema, path)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._check_number(value, schema, path)
        if isinstance(value, dict):
            self._check_object(value, schema, path)
        if isinstance(value, list):
            self._check_array(value, schema, path)

    def _check_type(self, value: Any, declared: Any, path: str) -> None:
        types = declared if isinstance(declared, list) else [declared]
        for type_name in types:
            check = _TYPE_CHECKS.get(type_name)
            if check is None:
                raise SchemaValidationError(f"unknown schema type {type_name!r}", path)
            if check(value):
                return
        raise SchemaValidationError(
            f"expected {' or '.join(types)}, got {type(value).__name__}", path
        )

    def _check_any_of(self, value: Any, branches: list[dict[str, Any]], path: str) -> None:
        failures = []
        for branch in branches:
            try:
                self._validate(value, branch, path)
                return
            except SchemaValidationError as exc:
                failures.append(str(exc))
        raise SchemaValidationError(
            "no anyOf branch matched: " + " | ".join(failures), path
        )

    def _check_string(self, value: str, schema: dict[str, Any], path: str) -> None:
        pattern = schema.get("pattern")
        if pattern is not None and not self._compiled_pattern(pattern).search(value):
            raise SchemaValidationError(f"string does not match pattern {pattern!r}", path)
        min_length = schema.get("minLength")
        if min_length is not None and len(value) < min_length:
            raise SchemaValidationError(f"string shorter than minLength {min_length}", path)
        max_length = schema.get("maxLength")
        if max_length is not None and len(value) > max_length:
            raise SchemaValidationError(f"string longer than maxLength {max_length}", path)

    def _check_number(self, value: float, schema: dict[str, Any], path: str) -> None:
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            raise SchemaValidationError(f"{value} is below minimum {minimum}", path)
        maximum = schema.get("maximum")
        if maximum is not None and value > maximum:
            raise SchemaValidationError(f"{value} is above maximum {maximum}", path)

    def _check_object(self, value: dict[str, Any], schema: dict[str, Any], path: str) -> None:
        for name in schema.get("required", []):
            if name not in value:
                raise SchemaValidationError(f"missing required property {name!r}", path)
        properties = schema.get("properties", {})
        for name, item in value.items():
            child_path = f"{path}.{name}"
            if name in properties:
                self._validate(item, properties[name], child_path)
            elif schema.get("additionalProperties") is False:
                raise SchemaValidationError(f"unexpected property {name!r}", path)
            elif isinstance(schema.get("additionalProperties"), dict):
                self._validate(item, schema["additionalProperties"], child_path)

    def _check_array(self, value: list[Any], schema: dict[str, Any], path: str) -> None:
        min_items = schema.get("minItems")
        if min_items is not None and len(value) < min_items:
            raise SchemaValidationError(f"array has fewer than minItems {min_items}", path)
        max_items = schema.get("maxItems")
        if max_items is not None and len(value) > max_items:
            raise SchemaValidationError(f"array has more than maxItems {max_items}", path)
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(value):
                self._validate(item, items, f"{path}[{index}]")
        elif isinstance(items, list):
            for index, (item, branch) in enumerate(zip(value, items)):
                self._validate(item, branch, f"{path}[{index}]")


def validate_language_key(document: dict[str, Any], section: str) -> None:
    """Reject MongoDB-reserved keys inside asset/metadata payloads.

    BigchainDB forbids keys that collide with MongoDB text-index language
    configuration or operator syntax (``$``-prefixed keys, dotted keys, and
    a bare ``language`` key holding a non-string).  Algorithm 1 calls this
    ``validateLanguageKey``.

    Raises:
        SchemaValidationError: naming the offending key.
    """
    payload = document.get(section)
    if payload is None:
        return
    _walk_language_keys(payload, f"$.{section}")


def _walk_language_keys(value: Any, path: str) -> None:
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SchemaValidationError(f"non-string key {key!r}", path)
            if key.startswith("$"):
                raise SchemaValidationError(f"operator-like key {key!r} is forbidden", path)
            if "." in key:
                raise SchemaValidationError(f"dotted key {key!r} is forbidden", path)
            if key == "language" and not isinstance(item, str):
                raise SchemaValidationError("'language' key must hold a string", path)
            _walk_language_keys(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _walk_language_keys(item, f"{path}[{index}]")
