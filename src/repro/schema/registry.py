"""Schema registry: loads YAML schema files and validates payloads by type.

Implements the ``loadSchema`` / ``validateSchema`` plumbing of Algorithm 1.
Schemas live as yamlite files under ``repro/schema/definitions``; the shared
``base.yaml`` supplies the ``definitions`` table every per-type schema
references.
"""

from __future__ import annotations

from importlib import resources
from typing import Any

from repro import yamlite
from repro.common.errors import SchemaValidationError, UnknownOperationError
from repro.schema.validator import SchemaValidator, validate_language_key

#: Operation name -> schema file stem.
OPERATION_SCHEMAS = {
    "CREATE": "create",
    "TRANSFER": "transfer",
    "REQUEST": "request",
    "BID": "bid",
    "ACCEPT_BID": "accept_bid",
    "RETURN": "return",
    "INTEREST": "interest",
    "PRE_REQUEST": "pre_request",
}

#: The reserved operation set OP (Section 3.1); superset of implemented types
#: so that the schema enum can mention planned primitives.
RESERVED_OPERATIONS = frozenset(OPERATION_SCHEMAS)


def _read_definition(stem: str) -> dict[str, Any]:
    source = resources.files("repro.schema").joinpath(f"definitions/{stem}.yaml").read_text()
    document = yamlite.loads(source)
    if not isinstance(document, dict):
        raise SchemaValidationError(f"schema file {stem}.yaml did not parse to a mapping")
    return document


class SchemaRegistry:
    """Loads and caches one :class:`SchemaValidator` per transaction type."""

    def __init__(self) -> None:
        base = _read_definition("base")
        self._definitions: dict[str, Any] = base.get("definitions", {})
        self._validators: dict[str, SchemaValidator] = {}

    def validator_for(self, operation: str) -> SchemaValidator:
        """Return the validator for ``operation``.

        Raises:
            UnknownOperationError: if the operation is outside OP.
        """
        stem = OPERATION_SCHEMAS.get(operation)
        if stem is None:
            raise UnknownOperationError(
                f"operation {operation!r} is not in the reserved operation set",
                "$.operation",
            )
        validator = self._validators.get(operation)
        if validator is None:
            schema = _read_definition(stem)
            validator = SchemaValidator(schema, definitions=self._definitions)
            self._validators[operation] = validator
        return validator

    def validate_transaction(self, payload: dict[str, Any]) -> None:
        """Algorithm 1: full schema validation of a transaction payload.

        Runs (1) structural validation against the operation's YAML schema
        and (2) ``validateLanguageKey`` over the asset and metadata
        sections.

        Raises:
            SchemaValidationError / UnknownOperationError on any violation.
        """
        if not isinstance(payload, dict):
            raise SchemaValidationError("transaction payload must be a mapping")
        operation = payload.get("operation")
        if not isinstance(operation, str):
            raise SchemaValidationError("missing operation", "$.operation")
        self.validator_for(operation).validate(payload)
        asset = payload.get("asset")
        if isinstance(asset, dict) and "data" in asset:
            validate_language_key(asset, "data")
        validate_language_key(payload, "metadata")


_DEFAULT_REGISTRY: SchemaRegistry | None = None


def default_registry() -> SchemaRegistry:
    """Process-wide shared registry (schemas are immutable)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = SchemaRegistry()
    return _DEFAULT_REGISTRY
