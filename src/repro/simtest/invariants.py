"""Global invariants over a (possibly sharded) deployment.

Each invariant is a pure read of durable cluster state — node databases,
chains, 2PC lock/outbox tables, facade records — returning a list of
violation strings.  Per-``step`` invariants hold in *every* reachable
state, including mid-crash and mid-partition; ``quiesce`` invariants
hold only once everything is healed and the loop has drained (no stuck
locks, every submission settled).

The registry is the Jepsen-style half of the harness: schedules make
histories, these make verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simtest.plane import FaultPlane

#: An invariant body: plane -> violation strings (empty = holds).
InvariantFn = Callable[[FaultPlane], "list[str]"]


@dataclass
class Invariant:
    """One registered property.

    Attributes:
        name: stable identifier (appears in logs and repro bundles).
        fn: the check body.
        scope: ``"step"`` (checked during the run) or ``"quiesce"``
            (checked only after repair + drain).
        sharded_only: skip on single-cluster deployments.
        every: check cadence in steps (1 = every step) — for checks that
            replay whole chains and would dominate the step budget.
    """

    name: str
    fn: InvariantFn
    scope: str = "step"
    sharded_only: bool = False
    every: int = 1


@dataclass
class Violation:
    """One observed invariant breach."""

    invariant: str
    detail: str
    step: int
    sim_time: float

    def describe(self) -> str:
        return (
            f"step={self.step:04d} t={self.sim_time:.6f} "
            f"invariant={self.invariant} {self.detail}"
        )


# -- shared state readers ---------------------------------------------------------


def _reference_server(shard):
    """The node with the longest applied chain (ties: validator order).

    Chain-agreement is itself an invariant, so any maximal node is a
    faithful read of the shard's committed history — including nodes
    currently crashed, whose durable storage survives.
    """
    best = None
    best_len = -1
    for node_id in shard.engine.validator_order:
        server = shard.servers[node_id]
        chain_len = server.database.collection("blocks").count({})
        if chain_len > best_len:
            best, best_len = server, chain_len
    return best


def applied_transactions(plane: FaultPlane) -> dict[str, tuple[str, dict[str, Any]]]:
    """tx_id -> (shard_id, payload) over every shard's applied history.

    "Applied" means listed in a committed block's ``transaction_ids`` —
    the authoritative per-shard state, as opposed to facade records
    (which include rejections) or the ``transactions`` collection (which
    also holds cross-shard reference imports).

    Memoised per loop position: invariant checks run back-to-back with
    no events in between, so one scan serves the whole check round
    instead of every chain-reading invariant repeating it (which made
    runs quadratic in step count).
    """
    cache = getattr(plane, "_applied_cache", None)
    position = plane.loop.processed
    if cache is not None and cache[0] == position:
        return cache[1]
    out: dict[str, tuple[str, dict[str, Any]]] = {}
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        server = _reference_server(shard)
        transactions = server.database.collection("transactions")
        for block in server.database.collection("blocks").find({}, copy=False):
            for tx_id in block["transaction_ids"]:
                payload = transactions.find_one({"id": tx_id}, copy=False)
                if payload is not None:
                    out[tx_id] = (shard_id, payload)
    plane._applied_cache = (position, out)
    return out


def _spent_refs(payload: dict[str, Any]):
    for item in payload.get("inputs", []):
        fulfills = item.get("fulfills")
        if fulfills:
            yield (fulfills["transaction_id"], fulfills["output_index"])


def _migrator(plane: FaultPlane):
    """The deployment's reshard controller, if elastic resharding is wired."""
    return getattr(plane.cluster, "migrator", None)


def _migrated_final_home(migrator) -> dict[tuple[str, int], str]:
    """ref -> shard the migration journal says finally owns it.

    Walks ``done`` migrations in id order — a ref can only join a second
    migration after the first one's cutover re-homed it, and ids are
    assigned at start time, so id order subsumes causal order and the
    last writer is the final owner."""
    home: dict[tuple[str, int], str] = {}
    for doc in sorted(
        migrator._journal.find({"phase": "done"}, copy=False),
        key=lambda d: d["migration_id"],
    ):
        for row in doc.get("moved") or []:
            home[(row[0], row[1])] = doc["target"]
    return home


# -- per-step invariants ----------------------------------------------------------


def no_double_spend(plane: FaultPlane) -> list[str]:
    """Every output is spent by at most one applied transaction, globally."""
    spenders: dict[tuple[str, int], set[str]] = {}
    for tx_id, (_, payload) in applied_transactions(plane).items():
        for ref in _spent_refs(payload):
            spenders.setdefault(ref, set()).add(tx_id)
    violations = []
    for ref, txs in sorted(spenders.items()):
        if len(txs) > 1:
            violations.append(
                f"output {ref[0][:8]}:{ref[1]} spent by {len(txs)} committed txs: "
                + ",".join(sorted(tx[:8] for tx in txs))
            )
    return violations


def chain_consistency(plane: FaultPlane) -> list[str]:
    """Per shard: every node's chain is height-contiguous and all nodes
    agree at every height they share — on the block id *and* on the set
    of transactions the block delivered (``deliver_tx`` divergence hides
    behind identical block ids, which are fixed at proposal time)."""
    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        by_height: dict[int, dict[str, tuple[str, tuple[str, ...]]]] = {}
        for node_id in shard.engine.validator_order:
            blocks = shard.servers[node_id].database.collection("blocks").find({}, copy=False)
            heights = sorted(block["height"] for block in blocks)
            if heights != list(range(1, len(heights) + 1)):
                violations.append(
                    f"{shard_id}/{node_id}: non-contiguous heights {heights[:6]}..."
                )
            for block in blocks:
                by_height.setdefault(block["height"], {})[node_id] = (
                    block["block_id"],
                    tuple(sorted(block["transaction_ids"])),
                )
        for height, views in sorted(by_height.items()):
            if len(set(views.values())) > 1:
                detail = " ".join(
                    f"{node}={bid[:8]}/{len(txs)}tx"
                    for node, (bid, txs) in sorted(views.items())
                )
                violations.append(
                    f"{shard_id}: replicas disagree at height {height}: {detail}"
                )
    return violations


def conservation(plane: FaultPlane) -> list[str]:
    """Spends reference committed outputs, and TRANSFERs conserve amounts."""
    applied = applied_transactions(plane)
    violations = []
    for tx_id, (shard_id, payload) in applied.items():
        in_total = 0
        for ref_tx, ref_index in _spent_refs(payload):
            source = applied.get(ref_tx)
            if source is None:
                violations.append(
                    f"{tx_id[:8]} on {shard_id} spends {ref_tx[:8]}:{ref_index}, "
                    "which is committed nowhere"
                )
                continue
            outputs = source[1].get("outputs", [])
            if ref_index >= len(outputs):
                violations.append(
                    f"{tx_id[:8]} spends nonexistent output {ref_tx[:8]}:{ref_index}"
                )
                continue
            in_total += int(outputs[ref_index].get("amount") or 0)
        if payload.get("operation") == "TRANSFER":
            out_total = sum(int(o.get("amount") or 0) for o in payload.get("outputs", []))
            if in_total != out_total:
                violations.append(
                    f"TRANSFER {tx_id[:8]} creates {out_total} from {in_total}"
                )
    return violations


def replica_utxo_consistency(plane: FaultPlane) -> list[str]:
    """Each node's ``utxos`` view equals what replaying its own chain
    (adjusted for cross-shard committed tombstones and migrated keys)
    predicts.

    Migrations re-home outputs without committing anything on either
    chain, so the chain-replay prediction is corrected from the 2PC
    agent's durable ``shard_migrations`` registry: refs whose *latest*
    row migrated them in seed the expected set (their creating
    transaction lives on another shard's chain), refs whose latest row
    migrated them out are subtracted (the chain minted them here, the
    cutover deleted them).  Latest-row-wins handles round trips — a ref
    that left and came back is in-shape again, not absent."""
    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        tombstoned: set[tuple[str, int]] = set()
        migrated_in: set[tuple[str, int]] = set()
        migrated_out: set[tuple[str, int]] = set()
        agent = plane.agents.get(shard_id)
        if agent is not None:
            for lock in agent.durable.collection("shard_locks").find(
                {"status": "committed"}, copy=False
            ):
                tombstoned.add((lock["transaction_id"], lock["output_index"]))
            latest: dict[tuple[str, int], tuple[int, str]] = {}
            for row in agent.durable.collection("shard_migrations").find(
                {}, copy=False
            ):
                ref = (row["transaction_id"], row["output_index"])
                sequence = int(row["migration_id"].rsplit("-", 1)[1])
                if ref not in latest or sequence > latest[ref][0]:
                    latest[ref] = (sequence, row["direction"])
            for ref, (_seq, direction) in latest.items():
                if direction == "in":
                    migrated_in.add(ref)
                else:
                    migrated_out.add(ref)
        for node_id in shard.engine.validator_order:
            server = shard.servers[node_id]
            transactions = server.database.collection("transactions")
            expected: set[tuple[str, int]] = set(migrated_in)
            for block in server.database.collection("blocks").find({}, copy=False):
                for tx_id in block["transaction_ids"]:
                    payload = transactions.find_one({"id": tx_id}, copy=False)
                    if payload is None:
                        continue
                    for index in range(len(payload.get("outputs", []))):
                        expected.add((tx_id, index))
                    for ref in _spent_refs(payload):
                        expected.discard(ref)
            expected -= migrated_out
            expected -= tombstoned
            actual = {
                (doc["transaction_id"], doc["output_index"])
                for doc in server.database.collection("utxos").find({}, copy=False)
            }
            if expected != actual:
                ghost = sorted(actual - expected)[:3]
                missing = sorted(expected - actual)[:3]
                violations.append(
                    f"{shard_id}/{node_id}: utxo view drifted "
                    f"(ghost={[(t[:8], i) for t, i in ghost]} "
                    f"missing={[(t[:8], i) for t, i in missing]})"
                )
    return violations


def lock_outbox_consistency(plane: FaultPlane) -> list[str]:
    """Durable 2PC state matches the chains it claims to reflect."""
    applied = applied_transactions(plane)
    violations = []
    for shard_id, agent in sorted(plane.agents.items()):
        for lock in agent.durable.collection("shard_locks").find(
            {"status": "committed"}, copy=False
        ):
            holder = lock["holder"]
            if holder not in applied:
                violations.append(
                    f"{shard_id}: committed tombstone for {holder[:8]} "
                    "but the holder is committed nowhere"
                )
        for doc in agent.durable.collection("shard_outbox").find({}, copy=False):
            tx_id = doc["tx_id"]
            if doc["outcome"] == "committed" and tx_id not in applied:
                violations.append(
                    f"{shard_id}: outbox says {tx_id[:8]} committed "
                    "but the home chain never applied it"
                )
            if doc["outcome"] == "aborted" and tx_id in applied:
                violations.append(
                    f"{shard_id}: outbox says {tx_id[:8]} aborted "
                    f"but it is applied on {applied[tx_id][0]}"
                )
    return violations


def metrics_consistency(plane: FaultPlane) -> list[str]:
    """Aggregate metrics equal the sum of their per-shard parts."""
    violations = []
    cluster = plane.cluster
    if plane.sharded:
        merged = cluster.records
        committed_ids = {
            tx_id for tx_id, record in merged.items() if record.committed_at is not None
        }
        aggregate = cluster.aggregate_metrics()
        if aggregate.committed != len(committed_ids):
            violations.append(
                f"aggregate committed={aggregate.committed} but merged records "
                f"show {len(committed_ids)}"
            )
        per_shard_total = sum(
            metrics.committed for metrics in cluster.per_shard_metrics().values()
        )
        shard_committed_ids = {
            tx_id
            for shard in cluster.shards.values()
            for tx_id, record in shard.records.items()
            if record.committed_at is not None
        }
        if per_shard_total != len(shard_committed_ids):
            violations.append(
                f"per-shard committed totals {per_shard_total} != "
                f"{len(shard_committed_ids)} distinct shard-level commits"
            )
    else:
        committed = sum(
            1 for record in cluster.records.values() if record.committed_at is not None
        )
        if committed != len(cluster.committed_records()):
            violations.append("committed_records() disagrees with record flags")
    return violations


def mempool_discipline(plane: FaultPlane) -> list[str]:
    """Dedup memory stays bounded; nothing committed sits in a pool."""
    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        for node_id in shard.engine.validator_order:
            validator = shard.engine.validator(node_id)
            mempool = validator.mempool
            if mempool.seen_size() > mempool.seen_capacity:
                violations.append(
                    f"{shard_id}/{node_id}: seen window {mempool.seen_size()} "
                    f"exceeds bound {mempool.seen_capacity}"
                )
            applied_here: set[str] = set()
            blocks = shard.servers[node_id].database.collection("blocks")
            for block in blocks.find({}, copy=False):
                applied_here.update(block["transaction_ids"])
            resident = set(mempool.pending_ids()) & applied_here
            if resident:
                violations.append(
                    f"{shard_id}/{node_id}: committed txs still pooled: "
                    + ",".join(sorted(tx[:8] for tx in resident))
                )
    return violations


# -- byzantine-fault invariants ---------------------------------------------------


def honest_no_divergence(plane: FaultPlane) -> list[str]:
    """No two *honest* nodes commit different blocks at any height.

    The f<n/3 safety claim in executable form: while at most
    ⌊(n−1)/3⌋ validators per shard are byzantine, the honest replicas'
    consensus chains must agree wherever they overlap — equivocation,
    double voting and withheld votes may slow a shard down but never
    split it.  A schedule that over-corrupts a shard is itself flagged:
    past the cap the claim is vacuous and the run is miscounted, not
    unsafe."""
    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        order = shard.engine.validator_order
        byzantine = set(plane.byzantine_nodes(shard_id))
        cap = (len(order) - 1) // 3
        if len(byzantine) > cap:
            violations.append(
                f"{shard_id}: {len(byzantine)} byzantine validators exceed "
                f"the f<n/3 cap ({cap}) — schedule is not survivable"
            )
            continue
        by_height: dict[int, dict[str, str]] = {}
        for node_id in order:
            if node_id in byzantine:
                continue
            for block in shard.engine.validator(node_id).chain:
                by_height.setdefault(block.height, {})[node_id] = block.block_id
        for height, views in sorted(by_height.items()):
            if len(set(views.values())) > 1:
                detail = " ".join(
                    f"{node}={block_id[:8]}" for node, block_id in sorted(views.items())
                )
                violations.append(
                    f"{shard_id}: honest nodes diverge at height {height}: {detail}"
                )
    return violations


def no_forged_admission(plane: FaultPlane) -> list[str]:
    """No forged-signature transaction is ever applied.

    The adversarial workload records every payload it submitted with a
    mutated signature in ``plane.forged_tx_ids``; signature verification
    (and the identity-guarded verdict memos in front of it) must reject
    every one of them before a block carries it."""
    if not plane.forged_tx_ids:
        return []
    applied = applied_transactions(plane)
    violations = []
    for tx_id in sorted(plane.forged_tx_ids & set(applied)):
        violations.append(
            f"forged-signature tx {tx_id[:8]} applied on {applied[tx_id][0]}"
        )
    return violations


def equivocation_contained(plane: FaultPlane) -> list[str]:
    """Byzantine evidence never rolls an honest chain back.

    Watches every honest node's consensus chain between checks: the
    previous observation must be a *prefix* of the current one.  An
    equivocating proposer may delay a height or leave rival proposals
    in flight, but once an honest replica commits a block that block
    stays committed — containment means evidence and discarded rivals,
    never history rewrites.  (Crash-restarts re-baseline the watch in
    :meth:`FaultPlane.crash_restart`: rewinding to the durable prefix
    is the durability contract, not a byzantine rollback.)"""
    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        byzantine = set(plane.byzantine_nodes(shard_id))
        for node_id in shard.engine.validator_order:
            if node_id in byzantine:
                continue
            chain = [block.block_id for block in shard.engine.validator(node_id).chain]
            previous = plane.chain_watch.get((shard_id, node_id))
            if previous is not None and chain[: len(previous)] != previous:
                violations.append(
                    f"{shard_id}/{node_id}: committed chain rolled back "
                    f"(had {len(previous)} blocks, prefix no longer holds)"
                )
            plane.chain_watch[(shard_id, node_id)] = chain
    return violations


# -- quiesce invariants -----------------------------------------------------------


def no_stuck_locks(plane: FaultPlane) -> list[str]:
    """After repair + drain, no prepared lock survives anywhere."""
    violations = []
    for shard_id, agent in sorted(plane.agents.items()):
        held = agent.active_locks()
        if held:
            violations.append(
                f"{shard_id}: {len(held)} UTXO lock(s) still prepared: "
                + ",".join(sorted(lock["holder"][:8] for lock in held))
            )
    return violations


def outbox_terminal(plane: FaultPlane) -> list[str]:
    """Every 2PC instance reached a fully-acknowledged terminal state."""
    violations = []
    for shard_id, agent in sorted(plane.agents.items()):
        for doc in agent.unfinished():
            violations.append(
                f"{shard_id}: outbox record {doc['tx_id'][:8]} parked in "
                f"state={doc['state']}"
            )
    return violations


def wal_prefix_durability(plane: FaultPlane) -> list[str]:
    """Disk tells the same story as memory once the loop has drained.

    For every durable node and 2PC agent: replaying its device (newest
    valid snapshot + WAL scan-to-torn-tail, **read-only** — no repair)
    must reconstruct exactly the live collections, the applied chain
    (same heights and value-based block ids) and the consensus lock.
    Mid-run the disk legitimately trails memory by one group-commit
    batch; at quiesce every flush has fired, so any divergence means a
    mutation escaped the journal, replay is wrong, or a torn tail ate
    acknowledged state — the prefix-durability contract in one check.
    """
    if not plane.durable:
        return []
    from repro.durability.recovery import diff_databases, recover
    from repro.storage.database import make_smartchaindb_database

    violations = []
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        for node_id in shard.engine.validator_order:
            durability = shard.node_durability[node_id]
            if durability.log.pending:
                violations.append(
                    f"{shard_id}/{node_id}: {durability.log.pending} journal "
                    "records still unflushed at quiesce"
                )
            recovered = recover(
                durability,
                lambda nid=node_id, idx=shard.config.indexed_storage: (
                    make_smartchaindb_database(name=f"smartchaindb-{nid}", indexed=idx)
                ),
                repair=False,
            )
            server = shard.servers[node_id]
            for problem in diff_databases(server.database, recovered.database):
                violations.append(f"{shard_id}/{node_id}: {problem}")
            validator = shard.engine.validator(node_id)
            live_chain = [(block.height, block.block_id) for block in validator.chain]
            disk_chain = [(rec["h"], rec["id"]) for rec in recovered.block_records]
            if live_chain != disk_chain:
                violations.append(
                    f"{shard_id}/{node_id}: disk chain ({len(disk_chain)} blocks) "
                    f"!= live chain ({len(live_chain)} blocks)"
                )
            live_lock = (
                (validator._locked_round, validator._locked_block.block_id)
                if validator._locked_block is not None
                else (-1, None)
            )
            disk_round, disk_block = recovered.locked()
            disk_lock = (disk_round, disk_block.block_id if disk_block else None)
            if live_lock != disk_lock:
                violations.append(
                    f"{shard_id}/{node_id}: disk lock {disk_lock} != live {live_lock}"
                )
    for shard_id, agent in sorted(plane.agents.items()):
        if agent.durability is None:
            continue
        if agent.durability.log.pending:
            violations.append(
                f"{shard_id}/agent: journal records still unflushed at quiesce"
            )
        recovered = recover(
            agent.durability,
            lambda a=agent: a._make_durable_database(journaled=False),
            repair=False,
        )
        for problem in diff_databases(agent.durable, recovered.database):
            violations.append(f"{shard_id}/agent: {problem}")
    migrator = _migrator(plane)
    if migrator is not None and migrator.durability is not None:
        if migrator.durability.log.pending:
            violations.append(
                "reshard-controller: journal records still unflushed at quiesce"
            )
        recovered = recover(
            migrator.durability,
            lambda: migrator._make_journal_database(journaled=False),
            repair=False,
        )
        for problem in diff_databases(migrator.journal_db, recovered.database):
            violations.append(f"reshard-controller: {problem}")
    return violations


def mv_consistency(plane: FaultPlane) -> list[str]:
    """Every materialized view equals a from-scratch recomputation.

    Rebuilds a fresh :class:`~repro.views.manager.ViewManager` from each
    shard's reference chain (the longest one — chain agreement is its
    own invariant) and compares canonical snapshots against the live,
    incrementally-maintained manager.  Any drift means the WAL feed
    dropped, duplicated or mis-ordered an update somewhere in the crash/
    partition/byzantine history — the read path would be serving wrong
    answers while every write-path invariant still passed.
    """
    if not plane.durable:
        return []
    live = getattr(plane.cluster, "views", None)
    if live is None:
        return []
    from repro.durability.recovery import block_record
    from repro.views import ViewManager

    rebuilt = ViewManager()
    for shard_id in plane.shard_ids:
        shard = plane.shard_cluster(shard_id)
        chain = max(
            (shard.engine.validator(n).chain for n in shard.engine.validator_order),
            key=len,
        )
        for block in sorted(chain, key=lambda b: b.height):
            rebuilt.apply_block_record(shard.view_shard_key, block_record(block))
    expected = rebuilt.consistency_snapshot()
    actual = live.consistency_snapshot()
    violations = []
    for key in expected:
        if expected[key] != actual.get(key):
            want, got = expected[key], actual.get(key)
            if isinstance(want, list) and isinstance(got, list):
                missing = [item for item in want if item not in got][:3]
                ghost = [item for item in got if item not in want][:3]
                detail = f"missing={missing} ghost={ghost}"
            else:
                detail = f"expected {str(want)[:120]} got {str(got)[:120]}"
            violations.append(f"materialized view {key!r} drifted: {detail}")
    return violations


# -- elastic-resharding invariants ------------------------------------------------


def migration_terminal(plane: FaultPlane) -> list[str]:
    """After repair + drain, every journaled migration reached a terminal
    phase — ``done`` (cutover rolled forward) or ``rolled_back``
    (presumed abort).  A migration parked anywhere else means recovery
    lost track of it: its fences would block the moving keys forever."""
    migrator = _migrator(plane)
    if migrator is None:
        return []
    from repro.sharding.migration import TERMINAL_PHASES

    violations = []
    for doc in sorted(
        migrator._journal.find({}, copy=False), key=lambda d: d["migration_id"]
    ):
        if doc["phase"] not in TERMINAL_PHASES:
            violations.append(
                f"migration {doc['migration_id']} ({doc['source']}->"
                f"{doc['target']}) parked in phase={doc['phase']}"
            )
    return violations


def no_key_lost(plane: FaultPlane) -> list[str]:
    """Every output a ``done`` migration moved is either committed-spent
    somewhere or present in its final owner's UTXO set.

    The lost-key failure this catches: a cutover that deleted the source
    copy but (crash, torn write, skipped repair) never materialized the
    target copy — the owner would reject every spend of a live output."""
    migrator = _migrator(plane)
    if migrator is None:
        return []
    spent: set[tuple[str, int]] = set()
    for _tx_id, (_shard, payload) in applied_transactions(plane).items():
        spent.update(_spent_refs(payload))
    violations = []
    for (tx_id, index), owner in sorted(_migrated_final_home(migrator).items()):
        if (tx_id, index) in spent or owner not in plane.shard_ids:
            continue
        server = _reference_server(plane.shard_cluster(owner))
        doc = server.database.collection("utxos").find_one(
            {"transaction_id": tx_id, "output_index": index}, copy=False
        )
        if doc is None:
            violations.append(
                f"migrated output {tx_id[:8]}:{index} lost — unspent but "
                f"absent from final owner {owner}"
            )
    return violations


def no_key_duplicated(plane: FaultPlane) -> list[str]:
    """No migrated output is spendable on two shards, and nothing a
    rolled-back migration staged survives on its target.

    The double-spend enabler this catches: a cutover (or its repair)
    that materialized the target copy without deleting the source copy —
    both shards would accept a spend of the same output."""
    migrator = _migrator(plane)
    if migrator is None:
        return []
    violations = []
    final_home = _migrated_final_home(migrator)
    for (tx_id, index), owner in sorted(final_home.items()):
        holders = []
        for shard_id in plane.shard_ids:
            server = _reference_server(plane.shard_cluster(shard_id))
            present = server.database.collection("utxos").find_one(
                {"transaction_id": tx_id, "output_index": index}, copy=False
            )
            if present is not None:
                holders.append(shard_id)
        if len(holders) > 1:
            violations.append(
                f"migrated output {tx_id[:8]}:{index} live on multiple "
                "shards: " + ",".join(holders)
            )
        elif holders and holders[0] != owner:
            violations.append(
                f"migrated output {tx_id[:8]}:{index} lives on {holders[0]} "
                f"but the migration journal homes it on {owner}"
            )
    # Presumed abort leaves no residue: a rolled-back migration never
    # reached cutover, so none of its planned refs may have a UTXO
    # document on its target (unless a *later* done migration moved the
    # ref there legitimately).
    for doc in sorted(
        migrator._journal.find({"phase": "rolled_back"}, copy=False),
        key=lambda d: d["migration_id"],
    ):
        target = doc["target"]
        if target not in plane.shard_ids:
            continue
        server = _reference_server(plane.shard_cluster(target))
        utxos = server.database.collection("utxos")
        for row in doc.get("planned_refs") or []:
            ref = (row[0], row[1])
            if final_home.get(ref) == target:
                continue
            if utxos.find_one(
                {"transaction_id": ref[0], "output_index": ref[1]}, copy=False
            ) is not None:
                violations.append(
                    f"rolled-back migration {doc['migration_id']} left "
                    f"{ref[0][:8]}:{ref[1]} behind on target {target}"
                )
    return violations


def all_cross_settled(plane: FaultPlane) -> list[str]:
    """Every cross-shard submission has a final outcome at quiesce."""
    if not plane.sharded:
        return []
    violations = []
    for tx_id, record in sorted(plane.cluster.cross_records.items()):
        if record.committed_at is None and record.rejected is None:
            violations.append(f"cross-shard tx {tx_id[:8]} never settled")
    return violations


DEFAULT_INVARIANTS: list[Invariant] = [
    Invariant("no_double_spend", no_double_spend),
    # Full per-node chain re-reads: cadenced like the other chain
    # replayers (still runs unconditionally at quiesce).
    Invariant("chain_consistency", chain_consistency, every=5),
    Invariant("conservation", conservation),
    Invariant("replica_utxo_consistency", replica_utxo_consistency, every=5),
    Invariant("lock_outbox_consistency", lock_outbox_consistency, sharded_only=True),
    Invariant("metrics_consistency", metrics_consistency),
    Invariant("mempool_discipline", mempool_discipline, every=5),
    # Byzantine-fault family: safety under lying validators and forging
    # clients (ISSUE 6).  Divergence/rollback checks replay in-memory
    # chains, so they share the chain-replayers' cadence.
    Invariant("honest_no_divergence", honest_no_divergence, every=5),
    Invariant("no_forged_admission", no_forged_admission),
    Invariant("equivocation_contained", equivocation_contained, every=5),
    Invariant("no_stuck_locks", no_stuck_locks, scope="quiesce", sharded_only=True),
    Invariant("outbox_terminal", outbox_terminal, scope="quiesce", sharded_only=True),
    Invariant("all_cross_settled", all_cross_settled, scope="quiesce", sharded_only=True),
    # Elastic-resharding family (ISSUE 9): every migration terminal at
    # quiesce, and the journal's final-owner map matches the physical
    # UTXO placement exactly — nothing lost, nothing duplicated.
    Invariant("migration_terminal", migration_terminal, scope="quiesce", sharded_only=True),
    Invariant("no_key_lost", no_key_lost, scope="quiesce", sharded_only=True),
    Invariant("no_key_duplicated", no_key_duplicated, scope="quiesce", sharded_only=True),
    # Disk == memory for every durable node/agent (skips volatile runs).
    Invariant("wal_prefix_durability", wal_prefix_durability, scope="quiesce"),
    # Incremental views == from-scratch recomputation (skips volatile runs).
    Invariant("mv_consistency", mv_consistency, scope="quiesce"),
]


@dataclass
class InvariantChecker:
    """Runs the applicable registry slice and accumulates verdicts."""

    plane: FaultPlane
    invariants: list[Invariant] = field(default_factory=lambda: list(DEFAULT_INVARIANTS))
    checks_run: dict[str, int] = field(default_factory=dict)

    def register(self, invariant: Invariant) -> None:
        self.invariants.append(invariant)

    def applicable(self, scope: str) -> list[Invariant]:
        return [
            invariant
            for invariant in self.invariants
            if invariant.scope == scope and (self.plane.sharded or not invariant.sharded_only)
        ]

    def check_step(self, step: int) -> list[Violation]:
        """Run due per-step invariants; returns any violations."""
        violations: list[Violation] = []
        for invariant in self.applicable("step"):
            if step % invariant.every != 0:
                continue
            self.checks_run[invariant.name] = self.checks_run.get(invariant.name, 0) + 1
            for detail in invariant.fn(self.plane):
                violations.append(
                    Violation(invariant.name, detail, step, self.plane.now)
                )
        return violations

    def check_quiesce(self, step: int) -> list[Violation]:
        """Run everything — per-step *and* quiesce-only — after repair."""
        violations: list[Violation] = []
        for scope in ("step", "quiesce"):
            for invariant in self.applicable(scope):
                self.checks_run[invariant.name] = self.checks_run.get(invariant.name, 0) + 1
                for detail in invariant.fn(self.plane):
                    violations.append(
                        Violation(invariant.name, detail, step, self.plane.now)
                    )
        return violations
