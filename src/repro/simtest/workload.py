"""Chaos workload: paper trace intents plus adversarial spends.

Drives a :class:`~repro.simtest.plane.FaultPlane` with the marketplace
trace from :mod:`repro.workloads.generator` (CREATE / REQUEST / BID /
ACCEPT_BID in the paper's interleaved mix) widened with the two op
families the chaos harness needs:

* **churn transfers** — spend a committed asset, optionally migrating it
  to another shard through a routed ``shard_key`` (the 2PC path);
* **conflict pairs** — two transactions spending the *same* UTXO are
  submitted back-to-back (local vs cross-shard, or cross vs cross to
  different homes).  At most one may ever commit; the invariant checker
  turns a double-commit into a replayable failure.
* **adversarial clients** (``adversarial_rate``, ISSUE 6) — byzantine
  *clients* rather than validators: double-submission of recent
  payloads both through the facade (its dedup must keep the original
  record) and injected straight into a validator's intake (the mempool
  ``_seen`` window and committed-id filter must drop it), plus
  forged-signature transactions — replayed payloads with a mutated
  signature and freshly-prepared spends tampered after signing — whose
  ids are tracked in ``plane.forged_tx_ids`` for the
  ``no_forged_admission`` invariant.

The workload is fully deterministic: every choice draws from named
streams of the run's master seed, and in-flight bookkeeping only spends
outputs whose producing transaction has been observed committed.  All
adversarial draws live on dedicated ``workload:adv*`` streams behind
the rate gate, so ``adversarial_rate=0`` reproduces pre-byzantine runs
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.encoding import canonical_bytes, deep_copy_json
from repro.consensus.abci import envelope_for
from repro.crypto.hashing import sha3_256_hex
from repro.crypto.keys import KeyPair, keypair_from_string
from repro.sharding.router import SHARD_KEY_METADATA
from repro.sim.rng import SeededRng
from repro.simtest.plane import FaultPlane, SINGLE_SHARD
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Recent-payload window the adversarial ops replay from.
RECENT_WINDOW = 32


@dataclass
class Holding:
    """One spendable output the workload tracks."""

    owner: int
    asset_id: str
    tx_id: str
    output_index: int
    amount: int = 1


@dataclass
class _Request:
    """Lifecycle of one RFQ window."""

    index: int
    tx_id: str
    requester: int
    committed: bool = False
    accepted: bool = False
    bids: list[dict[str, Any]] = field(default_factory=list)


class TraceWorkload:
    """Step-driven workload over a fault plane.

    Args:
        plane: deployment under test.
        rng: the run's master seed (draws on ``workload:*`` streams).
        trace_total: size of the underlying paper-mix trace.
        n_actors: distinct signing identities.
        transfer_rate: per-step probability of a churn transfer instead
            of the next trace intent (given something is spendable).
        conflict_rate: per-step probability of a conflict pair.
        cross_rate: probability that a churn transfer migrates shards.
        adversarial_rate: per-step probability of an adversarial-client
            op (double submit / forged signature) instead of an honest
            one.  0 keeps the run byte-identical to pre-byzantine plans.
    """

    def __init__(
        self,
        plane: FaultPlane,
        rng: SeededRng,
        trace_total: int = 120,
        n_actors: int = 12,
        transfer_rate: float = 0.35,
        conflict_rate: float = 0.10,
        cross_rate: float = 0.35,
        adversarial_rate: float = 0.0,
    ):
        self.plane = plane
        self._rng = rng
        self.transfer_rate = transfer_rate
        self.conflict_rate = conflict_rate
        self.cross_rate = cross_rate if plane.sharded else 0.0
        self.adversarial_rate = adversarial_rate
        self.actors: list[KeyPair] = [
            keypair_from_string(f"chaos-actor-{index}") for index in range(n_actors)
        ]
        # The paper-mix intent stream; rewound from the start when spent.
        self._trace = list(
            WorkloadGenerator(WorkloadSpec(total=trace_total, seed=rng.seed + 1)).items()
        )
        self._trace_pos = 0
        self.spendable: list[Holding] = []
        #: tx_id -> ("create"|"transfer"|"bid"|"request"|"accept"|"conflict", detail)
        self._inflight: dict[str, tuple[str, Any]] = {}
        self._requests: dict[int, _Request] = {}
        #: Holdings escrowed by in-flight BIDs (restored on rejection).
        self._bid_holdings: dict[str, Holding] = {}
        self._next_request = 0
        self._filler = 0
        #: Recently-submitted honest payloads (bounded) — the pool the
        #: adversarial replay/forgery ops draw their material from.
        self._recent: list[dict[str, Any]] = []
        self._forge_counter = 0
        self.stats = {
            "submitted": 0,
            "creates": 0,
            "requests": 0,
            "bids": 0,
            "accepts": 0,
            "transfers": 0,
            "conflicts": 0,
            "cross": 0,
            "bursts": 0,
            "committed": 0,
            "rejected": 0,
            "skipped": 0,
            "double_submits": 0,
            "forged": 0,
            "forged_admitted": 0,
        }

    # -- helpers ---------------------------------------------------------------

    def _actor(self, index: int) -> KeyPair:
        return self.actors[index % len(self.actors)]

    def _driver(self):
        return self.plane.cluster.driver

    def _submit(self, transaction, kind: str, detail: Any) -> str:
        payload = transaction.to_dict()
        self.plane.submit_payload(payload)
        self._inflight[payload["id"]] = (kind, detail)
        self.stats["submitted"] += 1
        self._recent.append(deep_copy_json(payload))
        if len(self._recent) > RECENT_WINDOW:
            self._recent.pop(0)
        return payload["id"]

    def _migration_metadata(self, current_tx: str, tag: str) -> dict[str, str] | None:
        """A shard_key homing the spend away from its current shard."""
        cluster = self.plane.cluster
        current = cluster.router.home_of_tx(current_tx)
        away = [shard for shard in cluster.shard_ids if shard != current]
        if not away:
            return None
        target = self._rng.choice("workload:target", away)
        key = cluster.ring.key_landing_on(target, prefix=f"chaos-{tag}")
        return {SHARD_KEY_METADATA: key}

    def _take_holding(self) -> Holding:
        index = self._rng.randint("workload:holding", 0, len(self.spendable) - 1)
        return self.spendable.pop(index)

    # -- outcome polling --------------------------------------------------------

    def poll(self) -> None:
        """Fold settled in-flight transactions into the workload state."""
        for tx_id in list(self._inflight):
            record = self.plane.record_for(tx_id)
            if record is None or (record.committed_at is None and record.rejected is None):
                continue
            kind, detail = self._inflight.pop(tx_id)
            if record.committed_at is not None:
                self.stats["committed"] += 1
                self._on_committed(tx_id, kind, detail)
            else:
                self.stats["rejected"] += 1
                self._on_rejected(tx_id, kind, detail)

    def _on_committed(self, tx_id: str, kind: str, detail: Any) -> None:
        if kind == "create":
            owner = detail
            self.spendable.append(Holding(owner, tx_id, tx_id, 0))
        elif kind == "transfer":
            holding, recipient = detail
            self.spendable.append(Holding(recipient, holding.asset_id, tx_id, 0))
        elif kind == "conflict":
            holding, recipient, rival_id = detail
            self.spendable.append(Holding(recipient, holding.asset_id, tx_id, 0))
        elif kind == "request":
            self._requests[detail].committed = True
        elif kind == "bid":
            request_index, payload = detail
            request = self._requests.get(request_index)
            if request is not None:
                request.bids.append(payload)
        elif kind == "accept":
            self._requests[detail].accepted = True
        elif kind == "forged":
            # The invariant checker turns this into a replayable failure;
            # the counter makes the breach visible in run stats too.
            self.stats["forged_admitted"] += 1

    def _on_rejected(self, tx_id: str, kind: str, detail: Any) -> None:
        # A rejected spend releases its holding (unless the rival side of
        # a conflict pair claimed it — then the winner's commit already
        # re-homed the asset).
        if kind == "transfer":
            holding, _ = detail
            self.spendable.append(holding)
        elif kind == "conflict":
            holding, _, rival_id = detail
            rival = self.plane.record_for(rival_id)
            rival_rejected = (
                rival is not None
                and rival.committed_at is None
                and rival.rejected is not None
                and rival_id not in self._inflight
            )
            if rival_rejected and not any(
                h.tx_id == holding.tx_id and h.output_index == holding.output_index
                for h in self.spendable
            ):
                # Both rivals lost: the output is spendable again (the
                # second-settling side performs the single restore).
                self.spendable.append(holding)
        elif kind == "bid":
            request_index, payload = detail
            holding = self._bid_holdings.pop(tx_id, None)
            if holding is not None:
                self.spendable.append(holding)

    # -- op submission ----------------------------------------------------------

    def step(self) -> str:
        """Submit one workload op; returns a stable description."""
        self.poll()
        draw = self._rng.uniform("workload:op", 0.0, 1.0)
        if self.spendable and draw < self.conflict_rate:
            return self._submit_conflict()
        if self.spendable and draw < self.conflict_rate + self.transfer_rate:
            return self._submit_transfer()
        if (
            self._recent
            and self.adversarial_rate > 0
            and draw < self.conflict_rate + self.transfer_rate + self.adversarial_rate
        ):
            return self._submit_adversarial()
        return self._submit_trace()

    def burst(self, size: int) -> str:
        """Mempool pressure: a batch of filler CREATEs in one step."""
        for _ in range(size):
            self._submit_create(actor=self._rng.randint("workload:burst-actor", 0, len(self.actors) - 1))
        self.stats["bursts"] += 1
        return f"burst n={size}"

    def _submit_create(self, actor: int) -> str:
        self._filler += 1
        owner = self._actor(actor)
        create_tx = self._driver().prepare_create(
            owner, {"capabilities": ["chaos"], "rank": self._filler}
        )
        self._submit(create_tx, "create", actor)
        self.stats["creates"] += 1
        return f"create actor={actor}"

    def _submit_transfer(self) -> str:
        holding = self._take_holding()
        recipient = self._rng.randint("workload:recipient", 0, len(self.actors) - 1)
        metadata = None
        cross = ""
        if self.cross_rate > 0 and self._rng.uniform("workload:cross", 0.0, 1.0) < self.cross_rate:
            metadata = self._migration_metadata(holding.tx_id, f"t{self.stats['transfers']}")
            if metadata is not None:
                self.stats["cross"] += 1
                cross = " cross"
        transfer_tx = self._driver().prepare_transfer(
            self._actor(holding.owner),
            [(holding.tx_id, holding.output_index, holding.amount)],
            holding.asset_id,
            [(self._actor(recipient).public_key, holding.amount)],
            metadata=metadata,
        )
        self._submit(transfer_tx, "transfer", (holding, recipient))
        self.stats["transfers"] += 1
        return f"transfer asset={holding.asset_id[:8]}{cross}"

    def _submit_conflict(self) -> str:
        """Two rival spends of one output — at most one may commit."""
        holding = self._take_holding()
        owner = self._actor(holding.owner)
        recipient_a = self._rng.randint("workload:rival-a", 0, len(self.actors) - 1)
        recipient_b = self._rng.randint("workload:rival-b", 0, len(self.actors) - 1)
        spend = [(holding.tx_id, holding.output_index, holding.amount)]
        # Sharded: rival A migrates (2PC path) while rival B spends
        # locally, racing the lock against home validation.  Single
        # cluster: both rivals race through one BFT group.
        metadata_a = (
            self._migration_metadata(holding.tx_id, f"ca{self.stats['conflicts']}")
            if self.plane.sharded
            else None
        )
        rival_a = self._driver().prepare_transfer(
            owner, spend, holding.asset_id,
            [(self._actor(recipient_a).public_key, holding.amount)],
            metadata=metadata_a,
        )
        rival_b = self._driver().prepare_transfer(
            owner, spend, holding.asset_id,
            [(self._actor(recipient_b).public_key, holding.amount)],
        )
        id_a, id_b = rival_a.to_dict()["id"], rival_b.to_dict()["id"]
        self._submit(rival_a, "conflict", (holding, recipient_a, id_b))
        self._submit(rival_b, "conflict", (holding, recipient_b, id_a))
        self.stats["conflicts"] += 1
        return f"conflict asset={holding.asset_id[:8]}"

    # -- adversarial clients ------------------------------------------------------

    def _submit_adversarial(self) -> str:
        """One byzantine-client op against the admission defenses."""
        choice = self._rng.uniform("workload:adv", 0.0, 1.0)
        if choice < 0.4:
            return self._double_submit()
        if choice < 0.7 or not self.spendable:
            return self._forge_replay()
        return self._forge_spend()

    def _double_submit(self) -> str:
        """Replay a recent payload through both admission doors.

        The facade resubmit must hit the record dedup (original record
        kept, no duplicate lifecycle); the direct validator injection
        bypasses the facade entirely, so only the mempool ``_seen``
        window and the committed-id filter stand between the replay and
        a second block appearance."""
        payload = self._rng.choice("workload:adv-replay", self._recent)
        self.plane.submit_payload(deep_copy_json(payload))
        shard_id = (
            self.plane.cluster.router.home_of_tx(payload["id"])
            if self.plane.sharded
            else SINGLE_SHARD
        )
        shard = self.plane.shard_cluster(shard_id)
        alive = [
            node
            for node in shard.engine.validator_order
            if not shard.network.is_crashed(node)
        ]
        if alive:
            node = self._rng.choice("workload:adv-node", alive)
            replay = deep_copy_json(payload)
            envelope = envelope_for(
                replay,
                replay["id"],
                len(canonical_bytes(replay)),
                now=self.plane.now,
            )
            shard.engine.validator(node).submit_transaction(envelope)
        self.stats["double_submits"] += 1
        return f"adv double-submit tx={payload['id'][:8]}"

    def _tamper_signature(self, payload: dict[str, Any]) -> str | None:
        """Mutate one signature character in place and re-derive the id.

        The mutation swaps a mid-signature base58 character, so the
        forged signature still decodes to a well-formed 64-byte value —
        it fails *verification*, not parsing.  The id is recomputed over
        the tampered body exactly as honest clients derive it, so the
        forgery is internally consistent: only the signature check can
        reject it."""
        for item in payload.get("inputs", []):
            signatures = item.get("fulfillment", {}).get("signatures", {})
            for pubkey in sorted(signatures):
                signature = signatures[pubkey]
                mid = len(signature) // 2
                swapped = "3" if signature[mid] == "2" else "2"
                signatures[pubkey] = signature[:mid] + swapped + signature[mid + 1 :]
                body = {key: value for key, value in payload.items() if key != "id"}
                payload["id"] = sha3_256_hex(canonical_bytes(body))
                return payload["id"]
        return None

    def _submit_forged(self, payload: dict[str, Any], flavor: str) -> str:
        forged_id = payload["id"]
        self.plane.forged_tx_ids.add(forged_id)
        self.plane.submit_payload(payload)
        self._inflight[forged_id] = ("forged", flavor)
        self.stats["forged"] += 1
        self.stats["submitted"] += 1
        return f"adv forge-{flavor} tx={forged_id[:8]}"

    def _forge_replay(self) -> str:
        """A recent payload with one signature character flipped."""
        payload = deep_copy_json(self._rng.choice("workload:adv-forge", self._recent))
        if self._tamper_signature(payload) is None:
            return self._double_submit()
        return self._submit_forged(payload, "replay")

    def _forge_spend(self) -> str:
        """A fresh, otherwise-valid spend tampered after signing.

        Unlike a replay forgery (whose inputs are usually already spent,
        so semantic validation rejects it before signatures are even
        read), this spends a *live* holding — every check but signature
        verification passes, isolating the crypto layer as the only
        defense.  The holding is peeked, not popped: the forgery must
        never commit, so the honest workload keeps the output."""
        index = self._rng.randint("workload:adv-holding", 0, len(self.spendable) - 1)
        holding = self.spendable[index]
        self._forge_counter += 1
        recipient = (holding.owner + 1) % len(self.actors)
        transfer_tx = self._driver().prepare_transfer(
            self._actor(holding.owner),
            [(holding.tx_id, holding.output_index, holding.amount)],
            holding.asset_id,
            [(self._actor(recipient).public_key, holding.amount)],
            metadata={"forged": self._forge_counter},
        )
        payload = transfer_tx.to_dict()
        if self._tamper_signature(payload) is None:
            return self._double_submit()
        return self._submit_forged(payload, "spend")

    def _submit_trace(self) -> str:
        """Next intent of the paper trace, with dependency fallbacks."""
        for _ in range(len(self._trace)):
            item = self._trace[self._trace_pos % len(self._trace)]
            self._trace_pos += 1
            operation = item.operation
            if operation == "CREATE":
                return self._submit_create(item.actor)
            if operation == "REQUEST":
                request_tx = self._driver().prepare_request(
                    self._actor(item.actor), list(item.capabilities) or ["chaos"]
                )
                request = _Request(
                    index=self._next_request,
                    tx_id=request_tx.to_dict()["id"],
                    requester=item.actor,
                )
                self._next_request += 1
                self._requests[request.index] = request
                self._submit(request_tx, "request", request.index)
                self.stats["requests"] += 1
                return f"request window={request.index}"
            if operation == "BID":
                submitted = self._try_bid(item)
                if submitted is not None:
                    return submitted
                continue  # no open request / asset yet: advance the trace
            if operation == "ACCEPT_BID":
                submitted = self._try_accept(item)
                if submitted is not None:
                    return submitted
                continue
        # Trace exhausted its submittable intents this step.
        self.stats["skipped"] += 1
        return self._submit_create(actor=0)

    def _try_bid(self, item) -> str | None:
        open_requests = [
            request for request in self._requests.values()
            if request.committed and not request.accepted
        ]
        if not open_requests or not self.spendable:
            return None
        request = open_requests[
            item.request_index % len(open_requests)
            if item.request_index is not None
            else 0
        ]
        holding = self._take_holding()
        bid_tx = self._driver().prepare_bid(
            self._actor(holding.owner),
            request.tx_id,
            holding.asset_id,
            [(holding.tx_id, holding.output_index, holding.amount)],
        )
        payload = bid_tx.to_dict()
        self._bid_holdings[payload["id"]] = holding
        self._submit(bid_tx, "bid", (request.index, payload))
        self.stats["bids"] += 1
        return f"bid window={request.index}"

    def _try_accept(self, item) -> str | None:
        ready = [
            request for request in self._requests.values()
            if request.committed and not request.accepted and request.bids
        ]
        if not ready:
            return None
        request = ready[0]
        accept_tx = self._driver().prepare_accept_bid(
            self._actor(request.requester), request.tx_id, request.bids[0]
        )
        self._submit(accept_tx, "accept", request.index)
        request.accepted = True  # optimistic: avoid double accepts in flight
        self.stats["accepts"] += 1
        return f"accept window={request.index}"
