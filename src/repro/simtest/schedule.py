"""Seeded fault schedules.

A :class:`Schedule` is the machine-generated half of a chaos run: a
sparse map from harness step to one :class:`FaultAction` (the workload
half is drawn live from the same master seed).  The
:class:`ScheduleGenerator` composes plans from the full fault vocabulary
— node crash/restart, coordinator crash (timed or armed on an exact 2PC
phase), network partition/heal, message delay/reorder, clock skew,
mempool-pressure bursts and the byzantine family (equivocating
proposers, double voters, vote withholders, stale replicas) — while
keeping every plan *survivable*: at most one disruption per shard at a
time, fewer than n/3 concurrent liars per shard, every fault paired
with a repair, so the BFT quorums stay live and a red run always means
a broken invariant, never a schedule that starved the system.

Schedules serialise to canonical JSON; two runs from one seed dump
byte-identical plans, which is what makes a failure replayable from the
``(seed, steps)`` pair alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.common.encoding import canonical_serialize
from repro.sharding.migration import MIGRATE_TRAP_PHASES, MIGRATE_TRAP_ROLES
from repro.sim.rng import SeededRng
from repro.simtest.plane import FaultPlane

#: 2PC phases the generator arms coordinator-crash traps on.  Covers both
#: roles: the coordinator falling over right after durable intent
#: (``begin``), between the outbox flip and the home submit
#: (``commit_pending``), after deciding either way; the participant dying
#: with a fresh prepared lock or mid decision application.
TRAP_PHASES = (
    "begin",
    "commit_pending",
    "decided:committed",
    "decided:aborted",
    "prepared",
    "decision_applied",
)

#: 2PC phases the generator arms *crash-restart* traps on: the
#: participant dying with a fresh prepared lock (between prepare and
#: decision) and the coordinator dying between the outbox flip and the
#: home submit — both restored purely from their SimDisk.
RESTART_TRAP_PHASES = ("prepared", "commit_pending")

#: Fault kinds applicable to any deployment / only to sharded ones.
COMMON_KINDS = ("crash_node", "partition", "net_delay", "time_jump", "burst")
SHARDED_KINDS = ("crash_coordinator", "phase_trap")
#: Kinds requiring per-node durability (the crash-restart family).
DURABLE_KINDS = ("crash_restart",)
DURABLE_SHARDED_KINDS = ("restart_trap",)

#: Byzantine fault kinds: mark one validator as actively *lying* until
#: the paired ``byz_heal``.  Drawn from their own gate (``byzantine_rate``)
#: and their own ``schedule:byz-*`` streams, so enabling them leaves the
#: crash-fault half of a seed's plan byte-identical.  Byzantine windows
#: share the one-disruption-per-shard budget with crashes/partitions and
#: are additionally capped at ⌊(n−1)/3⌋ concurrent liars per shard, so
#: every plan keeps an honest quorum able to both progress and out-vote
#: the adversary — a red byzantine run always means broken safety, never
#: a starved schedule.
BYZANTINE_KINDS = (
    "byz_equivocate",
    "byz_double_vote",
    "byz_withhold",
    "byz_stale",
    "byz_poison",
)

#: Elastic-resharding kinds (durable sharded deployments with a reshard
#: controller, ≥2 shards): ``migrate`` starts a live key migration
#: between two existing shards; ``migrate_trap`` arms a crash on the
#: next migration reaching an exact protocol phase
#: (``"<phase>:<role>"``, phases from
#: :data:`~repro.sharding.migration.MIGRATE_TRAP_PHASES`, roles source /
#: target / controller).  Drawn from their own gate (``elastic_rate``)
#: and ``schedule:elastic-*`` streams, so enabling them leaves the
#: crash-fault half of a seed's plan byte-identical.
ELASTIC_KINDS = ("migrate", "migrate_trap")

#: Schedule kind -> consensus-layer behavior kind.
BYZANTINE_BEHAVIORS = {
    "byz_equivocate": "equivocate",
    "byz_double_vote": "double_vote",
    "byz_withhold": "withhold",
    "byz_stale": "stale",
    # Catch-up poisoner: bites when a crash-restart (which never consumes
    # the disruption budget, so the overlap is schedulable) sends a
    # recovering node to this peer for its missed suffix.
    "byz_poison": "poison",
}


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault (or its paired repair).

    Attributes:
        step: harness step the action applies at.
        kind: one of crash_node / recover_node / crash_coordinator /
            recover_coordinator / phase_trap / trap_clear / partition /
            heal / net_delay / net_calm / time_jump / burst.
        shard: target shard (None for deployment-wide actions).
        node: target validator (crash_node / recover_node only).
        arg: kind-specific payload — trap phase, delay seconds, jump
            seconds, or burst size.
    """

    step: int
    kind: str
    shard: str | None = None
    node: str | None = None
    arg: float | int | str | None = None

    def describe(self) -> str:
        """Stable one-line rendering for schedule dumps and step logs."""
        parts = [self.kind]
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.arg is not None:
            arg = f"{self.arg:.6f}" if isinstance(self.arg, float) else str(self.arg)
            parts.append(f"arg={arg}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        out: dict = {"step": self.step, "kind": self.kind}
        if self.shard is not None:
            out["shard"] = self.shard
        if self.node is not None:
            out["node"] = self.node
        if self.arg is not None:
            out["arg"] = self.arg
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultAction":
        return cls(
            step=int(data["step"]),
            kind=str(data["kind"]),
            shard=data.get("shard"),
            node=data.get("node"),
            arg=data.get("arg"),
        )


@dataclass
class Schedule:
    """A complete fault plan for one run."""

    seed: int
    steps: int
    actions: list[FaultAction]

    def __post_init__(self) -> None:
        self._by_step: dict[int, list[FaultAction]] = {}
        for action in self.actions:
            self._by_step.setdefault(action.step, []).append(action)

    def at(self, step: int) -> list[FaultAction]:
        """Actions scheduled for one step (usually zero or one)."""
        return self._by_step.get(step, [])

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON — the same form the rest of the
        system hashes, so the format cannot silently fork from it."""
        return canonical_serialize(
            {
                "seed": self.seed,
                "steps": self.steps,
                "actions": [action.to_dict() for action in self.actions],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        data = json.loads(text)
        return cls(
            seed=int(data["seed"]),
            steps=int(data["steps"]),
            actions=[FaultAction.from_dict(item) for item in data["actions"]],
        )


class ScheduleGenerator:
    """Draws survivable fault plans from a named RNG stream.

    Args:
        rng: the run's master :class:`SeededRng` (the generator draws on
            ``schedule:*`` streams only, so workload draws are unaffected
            by how many faults a plan contains).
        plane: topology source — shard ids and validator names.
        fault_rate: per-step probability that a new fault starts.
        byzantine_rate: per-step probability that a validator turns
            byzantine (0 disables the family and reproduces pre-byzantine
            plans byte-for-byte).
        elastic_rate: per-step probability that an elastic-resharding
            event starts — a live shard migration, sometimes preceded by
            an armed ``migrate_trap`` (0 disables the family and
            reproduces pre-elastic plans byte-for-byte).
    """

    def __init__(
        self,
        rng: SeededRng,
        plane: FaultPlane,
        fault_rate: float = 0.12,
        byzantine_rate: float = 0.0,
        elastic_rate: float = 0.0,
    ):
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if not 0.0 <= byzantine_rate <= 1.0:
            raise ValueError(
                f"byzantine_rate must be in [0, 1], got {byzantine_rate}"
            )
        if not 0.0 <= elastic_rate <= 1.0:
            raise ValueError(f"elastic_rate must be in [0, 1], got {elastic_rate}")
        self._rng = rng
        self._plane = plane
        self.fault_rate = fault_rate
        self.byzantine_rate = byzantine_rate
        self.elastic_rate = elastic_rate

    def generate(self, steps: int) -> Schedule:
        """Produce a plan of ``steps`` steps with paired repairs."""
        rng = self._rng
        plane = self._plane
        kinds = list(COMMON_KINDS) + (list(SHARDED_KINDS) if plane.sharded else [])
        if plane.durable:
            kinds += list(DURABLE_KINDS)
            if plane.sharded:
                kinds += list(DURABLE_SHARDED_KINDS)
        #: Migrations need two distinct shards, a controller journal for
        #: the controller-restart trap role, and agents for the fences.
        elastic = (
            self.elastic_rate > 0
            and plane.sharded
            and plane.durable
            and len(plane.shard_ids) >= 2
        )
        actions: list[FaultAction] = []
        #: step -> repairs that come due there (emitted in order).
        repairs: dict[int, list[FaultAction]] = {}
        #: shards with an open node-crash or partition (one at a time).
        disrupted: set[str] = set()
        #: shard -> validators currently marked byzantine.
        byzantine: dict[str, set[str]] = {}
        down_coordinators: set[str] = set()
        #: shards with an open delay window — windows must not overlap,
        #: or one window's net_calm would cut another's short and the
        #: dumped plan would diverge from the executed chaos.
        delayed: set[str] = set()
        trap_armed = False

        def repair_at(step: int, action: FaultAction) -> None:
            repairs.setdefault(step, []).append(action)

        for step in range(steps):
            for repair in repairs.pop(step, []):
                actions.append(repair)
                if repair.kind in ("recover_node", "heal"):
                    disrupted.discard(repair.shard)
                elif repair.kind == "recover_coordinator":
                    down_coordinators.discard(repair.shard)
                elif repair.kind == "net_calm":
                    delayed.discard(repair.shard)
                elif repair.kind == "trap_clear":
                    trap_armed = False
                elif repair.kind == "byz_heal":
                    disrupted.discard(repair.shard)
                    byzantine.get(repair.shard, set()).discard(repair.node)
            if self.byzantine_rate > 0 and rng.uniform(
                "schedule:byz-gate", 0.0, 1.0
            ) < self.byzantine_rate:
                shard = rng.choice("schedule:byz-shard", plane.shard_ids)
                marked = byzantine.setdefault(shard, set())
                cap = max(0, (len(plane.nodes(shard)) - 1) // 3)
                if shard not in disrupted and len(marked) < cap:
                    candidates = [
                        node for node in plane.nodes(shard) if node not in marked
                    ]
                    node = rng.choice("schedule:byz-node", candidates)
                    kind = rng.choice("schedule:byz-kind", list(BYZANTINE_KINDS))
                    hold = rng.randint("schedule:byz-hold", 3, 24)
                    marked.add(node)
                    # A byzantine window spends the shard's one-disruption
                    # budget: no crash or partition stacks on a lying
                    # node's shard, keeping the honest quorum live.
                    disrupted.add(shard)
                    actions.append(FaultAction(step, kind, shard=shard, node=node))
                    repair_at(
                        step + hold,
                        FaultAction(step + hold, "byz_heal", shard=shard, node=node),
                    )
            if elastic and rng.uniform(
                "schedule:elastic-gate", 0.0, 1.0
            ) < self.elastic_rate:
                source = rng.choice("schedule:elastic-source", plane.shard_ids)
                target = rng.choice(
                    "schedule:elastic-target",
                    [s for s in plane.shard_ids if s != source],
                )
                # Half the migrations run with a trap armed on one of
                # their own phases — arming shares the one-trap-at-a-time
                # budget with the 2PC traps, so a shared trap_clear never
                # cuts another window short.
                if not trap_armed and rng.uniform(
                    "schedule:elastic-trap", 0.0, 1.0
                ) < 0.5:
                    trap_armed = True
                    phase = rng.choice(
                        "schedule:elastic-phase", list(MIGRATE_TRAP_PHASES)
                    )
                    role = rng.choice(
                        "schedule:elastic-role", list(MIGRATE_TRAP_ROLES)
                    )
                    trap_hold = rng.randint("schedule:elastic-hold", 8, 24)
                    actions.append(
                        FaultAction(step, "migrate_trap", arg=f"{phase}:{role}")
                    )
                    repair_at(
                        step + trap_hold,
                        FaultAction(step + trap_hold, "trap_clear"),
                    )
                # The trap (if any) arms in the same step, *before* the
                # migration starts, so even the first phase can spring it.
                actions.append(
                    FaultAction(step, "migrate", shard=source, arg=target)
                )
            if rng.uniform("schedule:gate", 0.0, 1.0) >= self.fault_rate:
                continue
            kind = rng.choice("schedule:kind", kinds)
            shard = rng.choice("schedule:shard", plane.shard_ids)
            hold = rng.randint("schedule:hold", 3, 24)
            if kind == "crash_node":
                if shard in disrupted:
                    continue
                node = rng.choice("schedule:node", plane.nodes(shard))
                disrupted.add(shard)
                actions.append(FaultAction(step, "crash_node", shard=shard, node=node))
                repair_at(step + hold, FaultAction(step + hold, "recover_node", shard=shard, node=node))
            elif kind == "partition":
                if shard in disrupted:
                    continue
                disrupted.add(shard)
                actions.append(FaultAction(step, "partition", shard=shard))
                repair_at(step + hold, FaultAction(step + hold, "heal", shard=shard))
            elif kind == "crash_coordinator":
                if shard in down_coordinators:
                    continue
                down_coordinators.add(shard)
                actions.append(FaultAction(step, "crash_coordinator", shard=shard))
                repair_at(
                    step + hold, FaultAction(step + hold, "recover_coordinator", shard=shard)
                )
            elif kind == "phase_trap":
                if trap_armed:
                    continue
                trap_armed = True
                phase = rng.choice("schedule:phase", TRAP_PHASES)
                actions.append(FaultAction(step, "phase_trap", arg=phase))
                repair_at(step + hold, FaultAction(step + hold, "trap_clear"))
            elif kind == "crash_restart":
                # Atomic kill + restore-from-disk: no paired repair, and
                # no open-disruption bookkeeping — the node is back (and
                # catching up) within the same step.
                node = rng.choice("schedule:node", plane.nodes(shard))
                torn = rng.randint("schedule:torn", 0, 48)
                actions.append(
                    FaultAction(step, "crash_restart", shard=shard, node=node, arg=torn)
                )
            elif kind == "restart_trap":
                if trap_armed:
                    continue
                trap_armed = True
                phase = rng.choice("schedule:restart-phase", RESTART_TRAP_PHASES)
                actions.append(FaultAction(step, "restart_trap", arg=phase))
                repair_at(step + hold, FaultAction(step + hold, "trap_clear"))
            elif kind == "net_delay":
                if shard in delayed:
                    continue
                delayed.add(shard)
                delay = round(rng.uniform("schedule:delay", 0.002, 0.05), 6)
                actions.append(FaultAction(step, "net_delay", shard=shard, arg=delay))
                repair_at(step + hold, FaultAction(step + hold, "net_calm", shard=shard))
            elif kind == "time_jump":
                jump = round(rng.uniform("schedule:jump", 0.1, 1.5), 6)
                actions.append(FaultAction(step, "time_jump", arg=jump))
            elif kind == "burst":
                size = rng.randint("schedule:burst", 4, 12)
                actions.append(FaultAction(step, "burst", arg=size))
        # Durable deployments: every plan exercises the crash-restart
        # family at least once — one node rebuilt purely from its disk,
        # and (sharded) one agent restart landing between 2PC prepare
        # and decision — so no seed ships without covering the recovery
        # path this harness exists to break.
        if plane.durable and steps >= 8:
            window = (steps // 4, max(steps // 4 + 1, (3 * steps) // 4))
            if not any(action.kind == "crash_restart" for action in actions):
                at_step = rng.randint("schedule:restart-step", *window)
                shard = rng.choice("schedule:restart-shard", plane.shard_ids)
                node = rng.choice("schedule:restart-node", plane.nodes(shard))
                torn = rng.randint("schedule:torn", 0, 48)
                actions.append(
                    FaultAction(at_step, "crash_restart", shard=shard, node=node, arg=torn)
                )
            if plane.sharded and not any(
                action.kind == "restart_trap" for action in actions
            ):
                at_step = rng.randint("schedule:restart-trap-step", *window)
                # Keep the injected window clear of every randomly-armed
                # trap: a shared trap_clear landing inside another trap's
                # window would disarm it before it springs.
                last_clear = max(
                    (action.step for action in actions if action.kind == "trap_clear"),
                    default=-1,
                )
                at_step = min(max(at_step, last_clear + 1), steps - 2)
                clear_step = min(at_step + 12, steps - 1)
                actions.append(FaultAction(at_step, "restart_trap", arg="prepared"))
                actions.append(FaultAction(clear_step, "trap_clear"))
        # Elastic plans: every schedule crashes at least one migration on
        # an exact protocol phase — the migrate_trap analogue of the
        # guaranteed restart_trap above, so no elastic seed ships without
        # covering the crash-during-migration recovery path.
        if elastic and steps >= 8 and not any(
            action.kind == "migrate_trap" for action in actions
        ):
            window = (steps // 4, max(steps // 4 + 1, (3 * steps) // 4))
            at_step = rng.randint("schedule:elastic-trap-step", *window)
            last_clear = max(
                (action.step for action in actions if action.kind == "trap_clear"),
                default=-1,
            )
            at_step = min(max(at_step, last_clear + 1), steps - 2)
            clear_step = min(at_step + 16, steps - 1)
            phase = rng.choice("schedule:elastic-phase", list(MIGRATE_TRAP_PHASES))
            role = rng.choice("schedule:elastic-role", list(MIGRATE_TRAP_ROLES))
            source = rng.choice("schedule:elastic-source", plane.shard_ids)
            target = rng.choice(
                "schedule:elastic-target",
                [s for s in plane.shard_ids if s != source],
            )
            actions.append(FaultAction(at_step, "migrate_trap", arg=f"{phase}:{role}"))
            actions.append(FaultAction(at_step, "migrate", shard=source, arg=target))
            actions.append(FaultAction(clear_step, "trap_clear"))
        # Unemitted repairs past the horizon: quiesce repairs everything,
        # but keep the plan self-contained for replay tooling.
        for step in sorted(repairs):
            for repair in repairs[step]:
                actions.append(FaultAction(steps, repair.kind, repair.shard, repair.node, repair.arg))
        return Schedule(seed=rng.seed, steps=steps, actions=actions)
