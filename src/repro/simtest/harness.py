"""The deterministic chaos harness.

One master seed produces everything a run does: the cluster topology,
the fault schedule, the workload trace, every stochastic choice inside
the simulation — so a failing run is a ``(seed, steps)`` pair, and the
:class:`ReproBundle` it emits replays byte-identically anywhere.

A run is ``steps`` harness steps.  Each step

1. applies any :class:`~repro.simtest.schedule.FaultAction` the plan
   scheduled there (crashes, partitions, chaos delays, time jumps,
   bursts, 2PC phase traps, byzantine marks/heals),
2. submits one workload op (paper-mix intent, churn transfer, a
   conflict pair, or — with ``adversarial_rate`` — an adversarial
   double-submit/forgery),
3. advances the shared event loop by one slice of simulated time, and
4. runs every due per-step invariant.

After the last step the harness *quiesces* — repairs every fault,
drains the loop to a fixpoint — and runs the full registry including
the quiesce-only invariants (no stuck locks, all 2PC terminal, every
cross-shard submission settled).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import MigrationError
from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sim.rng import SeededRng
from repro.simtest.invariants import InvariantChecker, Violation
from repro.simtest.plane import FaultPlane
from repro.simtest.schedule import (
    BYZANTINE_BEHAVIORS,
    FaultAction,
    Schedule,
    ScheduleGenerator,
)
from repro.simtest.workload import TraceWorkload


@dataclass
class SimtestConfig:
    """Everything tunable about a chaos run (all of it seed-derived)."""

    seed: int = 2024
    steps: int = 200
    #: Deployment shape: ``single=True`` drives one SmartchainCluster.
    single: bool = False
    n_shards: int = 3
    n_validators: int = 4
    max_block_txs: int = 8
    #: Give every node and 2PC agent a real persistence stack (SimDisk +
    #: WAL + snapshots), enabling the crash-restart fault family and the
    #: wal_prefix_durability invariant.  False replays the pre-durability
    #: abstract storage model.
    durable: bool = True
    #: Simulated seconds each step advances the loop.
    step_duration: float = 0.05
    #: Per-step probability that a new fault starts.
    fault_rate: float = 0.12
    #: Per-step probability that a validator turns byzantine (lying
    #: behaviors from repro.consensus.byzantine, capped below n/3 per
    #: shard by the schedule).  0 replays pre-byzantine plans
    #: byte-for-byte.
    byzantine_rate: float = 0.0
    #: Per-step probability of an adversarial-client op (double submit /
    #: forged signature) instead of an honest one.
    adversarial_rate: float = 0.0
    #: Per-step probability that an elastic-resharding event starts — a
    #: live shard migration, sometimes with a crash trap armed on one of
    #: its own protocol phases (source / target / controller role).  0
    #: disables the family and replays pre-elastic plans byte-for-byte.
    elastic_rate: float = 0.0
    #: Workload mix knobs (see TraceWorkload).
    transfer_rate: float = 0.35
    conflict_rate: float = 0.10
    cross_rate: float = 0.35
    trace_total: int = 120
    n_actors: int = 12
    #: Stop at the first violation (the repro-bundle workflow) or keep
    #: going and report them all.
    fail_fast: bool = True
    max_events_per_step: int = 250_000

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "steps": self.steps,
            "single": self.single,
            "n_shards": self.n_shards,
            "n_validators": self.n_validators,
            "max_block_txs": self.max_block_txs,
            "durable": self.durable,
            "step_duration": self.step_duration,
            "fault_rate": self.fault_rate,
            "byzantine_rate": self.byzantine_rate,
            "adversarial_rate": self.adversarial_rate,
            "elastic_rate": self.elastic_rate,
            "transfer_rate": self.transfer_rate,
            "conflict_rate": self.conflict_rate,
            "cross_rate": self.cross_rate,
            "trace_total": self.trace_total,
            "n_actors": self.n_actors,
        }


@dataclass
class ReproBundle:
    """Everything needed to replay one failure byte-identically."""

    seed: int
    failed_step: int
    sim_time: float
    invariant: str
    detail: str
    config: dict
    schedule_json: str
    #: Flight-recorder dump at the moment of failure: the bounded event
    #: ring plus the span timeline of every transaction the violation
    #: names.  Deterministic (sim-clock timestamps only), so two
    #: same-seed runs emit byte-identical bundles.
    flight: dict = field(default_factory=dict)

    def replay_command(self) -> str:
        """The exact CLI line that reproduces this failure — every knob
        that deviates from the CLI defaults is spelled out."""
        parts = [
            "PYTHONPATH=src python -m repro simtest",
            f"--seed {self.config['seed']}",
            f"--steps {self.config['steps']}",
        ]
        defaults = SimtestConfig()
        if self.config.get("single"):
            parts.append("--single")
        if self.config.get("n_shards") != defaults.n_shards:
            parts.append(f"--shards {self.config['n_shards']}")
        if self.config.get("n_validators") != defaults.n_validators:
            parts.append(f"--validators {self.config['n_validators']}")
        if self.config.get("fault_rate") != defaults.fault_rate:
            parts.append(f"--fault-rate {self.config['fault_rate']}")
        if self.config.get("byzantine_rate", 0.0) != defaults.byzantine_rate:
            parts.append(f"--byzantine-rate {self.config['byzantine_rate']}")
        if self.config.get("adversarial_rate", 0.0) != defaults.adversarial_rate:
            parts.append(f"--adversarial-rate {self.config['adversarial_rate']}")
        if self.config.get("elastic_rate", 0.0) != defaults.elastic_rate:
            parts.append(f"--elastic-rate {self.config['elastic_rate']}")
        if not self.config.get("durable", True):
            parts.append("--volatile")
        return " ".join(parts)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "failed_step": self.failed_step,
                "sim_time": round(self.sim_time, 6),
                "invariant": self.invariant,
                "detail": self.detail,
                "config": self.config,
                "schedule": json.loads(self.schedule_json),
                "replay": self.replay_command(),
                "flight": self.flight,
            },
            sort_keys=True,
            indent=2,
        )


@dataclass
class SimReport:
    """Outcome of one harness run."""

    seed: int
    steps_run: int
    violations: list[Violation]
    schedule: Schedule
    step_log: list[str] = field(default_factory=list)
    invariant_log: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    bundle: ReproBundle | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


class SimHarness:
    """Seeded chaos runs over a sharded (or single) deployment."""

    def __init__(self, config: SimtestConfig | None = None):
        self.config = config or SimtestConfig()
        cfg = self.config
        self.rng = SeededRng(cfg.seed)
        durability = DurabilityConfig() if cfg.durable else None
        # Chaos runs trace every transaction: when an invariant trips, the
        # repro bundle must carry the failing transaction's full span
        # timeline, not a 1-in-64 sample of it.
        if cfg.single:
            cluster = SmartchainCluster(
                ClusterConfig(
                    n_validators=cfg.n_validators,
                    seed=cfg.seed,
                    consensus=tendermint_config(max_block_txs=cfg.max_block_txs),
                    durability=durability,
                    trace_sample_rate=1.0,
                )
            )
        else:
            cluster = ShardedCluster(
                ShardedClusterConfig(
                    n_shards=cfg.n_shards,
                    n_validators=cfg.n_validators,
                    seed=cfg.seed,
                    max_block_txs=cfg.max_block_txs,
                    durability=durability,
                    trace_sample_rate=1.0,
                )
            )
        self.plane = FaultPlane(cluster)
        self.schedule = ScheduleGenerator(
            self.rng,
            self.plane,
            cfg.fault_rate,
            byzantine_rate=cfg.byzantine_rate,
            elastic_rate=cfg.elastic_rate,
        ).generate(cfg.steps)
        self.workload = TraceWorkload(
            self.plane,
            self.rng,
            trace_total=cfg.trace_total,
            n_actors=cfg.n_actors,
            transfer_rate=cfg.transfer_rate,
            conflict_rate=cfg.conflict_rate,
            cross_rate=cfg.cross_rate,
            adversarial_rate=cfg.adversarial_rate,
        )
        self.checker = InvariantChecker(self.plane)
        # Phase traps: armed by the schedule, sprung by the agents.
        self._armed_phase: str | None = None
        #: Like ``_armed_phase``, but the sprung fault is a full
        #: crash-restart-from-disk of the agent (not a plain crash).
        self._armed_restart_phase: str | None = None
        #: Armed migrate_trap spec ("<phase>:<role>") — sprung by the
        #: next live migration entering that phase.
        self._armed_migrate: str | None = None
        self._trap_crashed: list[str] = []
        self._trap_log: list[str] = []
        self.plane.register_phase_listener(self._on_phase)
        self.plane.register_migration_listener(self._on_migration_phase)

    # -- phase traps -------------------------------------------------------------

    def _on_phase(self, shard_id: str, phase: str, tx_id: str) -> None:
        if self._armed_restart_phase == phase and not self.plane.coordinator_crashed(
            shard_id
        ):
            self._armed_restart_phase = None
            torn = self.rng.randint("trap:torn", 0, 48)
            self._trap_log.append(
                f"restart trap sprung t={self.plane.now:.6f} shard={shard_id} "
                f"phase={phase} tx={tx_id[:8]} torn={torn}"
            )
            # Restart through the loop: the agent finishes its current
            # handler, then dies and is rebuilt purely from its SimDisk —
            # for phase "prepared" that lands exactly between 2PC prepare
            # and decision.
            self.plane.loop.schedule_in(
                0.0,
                lambda: self.plane.crash_restart_coordinator(shard_id, torn),
            )
            return
        if self._armed_phase != phase:
            return
        if self.plane.coordinator_crashed(shard_id):
            return
        self._armed_phase = None
        self._trap_crashed.append(shard_id)
        self._trap_log.append(
            f"trap sprung t={self.plane.now:.6f} shard={shard_id} "
            f"phase={phase} tx={tx_id[:8]}"
        )
        # Crash through the loop, not synchronously: the agent must finish
        # its current handler (a real crash interrupts *between* steps of
        # the simulation, never mid-callback).
        self.plane.loop.schedule_in(
            0.0, lambda: self.plane.crash_coordinator(shard_id)
        )

    def _on_migration_phase(self, migration_id: str, phase: str) -> None:
        armed = self._armed_migrate
        if armed is None:
            return
        trap_phase, _, role = armed.partition(":")
        if trap_phase != phase:
            return
        migrator = self.plane.migrator
        migration = migrator.migrations.get(migration_id) if migrator else None
        if migration is None:
            return
        if role == "controller" and migrator.durability is None:
            return
        self._armed_migrate = None
        torn = self.rng.randint("migrate-trap:torn", 0, 48)
        self._trap_log.append(
            f"migrate trap sprung t={self.plane.now:.6f} "
            f"migration={migration_id} phase={phase} role={role} torn={torn}"
        )
        source, target = migration.source, migration.target
        # Crash through the loop: the controller finishes journaling the
        # phase it just entered, then the crashed party dies — for phase
        # "cutover" that lands exactly between the forced commit-point
        # record and its application.
        self.plane.loop.schedule_in(
            0.0,
            lambda: self.plane.crash_migration_role(role, source, target, torn),
        )

    # -- fault application --------------------------------------------------------

    def _apply(self, action: FaultAction) -> str:
        kind = action.kind
        plane = self.plane
        if kind == "crash_node":
            plane.crash_node(action.shard, action.node)
        elif kind == "recover_node":
            plane.recover_node(action.shard, action.node)
        elif kind == "crash_coordinator":
            plane.crash_coordinator(action.shard)
        elif kind == "recover_coordinator":
            if plane.coordinator_crashed(action.shard):
                plane.recover_coordinator(action.shard)
        elif kind == "phase_trap":
            self._armed_phase = str(action.arg)
        elif kind == "restart_trap":
            self._armed_restart_phase = str(action.arg)
        elif kind == "migrate_trap":
            self._armed_migrate = str(action.arg)
        elif kind == "migrate":
            try:
                migration_id = plane.start_migration(action.shard, str(action.arg))
            except MigrationError as exc:
                # A refused start (conflicting migration, crashed
                # controller) is a scheduled no-op, not a failure.
                return f"{action.describe()} (refused: {exc})"
            return f"{action.describe()} id={migration_id}"
        elif kind == "crash_restart":
            plane.crash_restart(action.shard, action.node, int(action.arg or 0))
        elif kind == "trap_clear":
            self._armed_phase = None
            self._armed_restart_phase = None
            self._armed_migrate = None
            for shard_id in self._trap_crashed:
                if plane.coordinator_crashed(shard_id):
                    plane.recover_coordinator(shard_id)
            self._trap_crashed.clear()
        elif kind == "partition":
            plane.partition_minority(action.shard)
        elif kind == "heal":
            plane.heal(action.shard)
        elif kind == "net_delay":
            plane.set_chaos_delay(action.shard, float(action.arg))
        elif kind == "net_calm":
            plane.set_chaos_delay(action.shard, 0.0)
        elif kind == "time_jump":
            plane.time_jump(float(action.arg))
        elif kind == "burst":
            return self.workload.burst(int(action.arg))
        elif kind in BYZANTINE_BEHAVIORS:
            plane.mark_byzantine(action.shard, action.node, BYZANTINE_BEHAVIORS[kind])
        elif kind == "byz_heal":
            plane.heal_byzantine(action.shard, action.node)
        else:
            raise ValueError(f"unknown fault action {kind!r}")
        return action.describe()

    # -- the run -------------------------------------------------------------------

    def run(self) -> SimReport:
        cfg = self.config
        report = SimReport(
            seed=cfg.seed, steps_run=0, violations=[], schedule=self.schedule
        )
        for step in range(cfg.steps):
            fault_notes = [self._apply(action) for action in self.schedule.at(step)]
            op_note = self.workload.step()
            self.plane.run_slice(cfg.step_duration, cfg.max_events_per_step)
            self.workload.poll()
            violations = self.checker.check_step(step)
            report.steps_run = step + 1
            fault_field = ";".join(fault_notes) if fault_notes else "-"
            report.step_log.append(
                f"step={step:04d} t={self.plane.now:.6f} "
                f"fault=[{fault_field}] op=[{op_note}]"
            )
            for violation in violations:
                report.invariant_log.append("VIOLATION " + violation.describe())
            report.violations.extend(violations)
            if violations and cfg.fail_fast:
                break
        quiesce_step = report.steps_run
        # Disarm any trap whose trap_clear fell past the horizon: quiesce
        # emits decided/done phases while repairing, and a trap springing
        # *during* repair would fail the quiesce invariants on a healthy
        # system.  (quiesce itself recovers already-sprung crashes.)
        self._armed_phase = None
        self._armed_restart_phase = None
        self._armed_migrate = None
        self._trap_crashed.clear()
        if not (report.violations and cfg.fail_fast):
            self.plane.quiesce()
            self.workload.poll()
            quiesce_violations = self.checker.check_quiesce(quiesce_step)
            for violation in quiesce_violations:
                report.invariant_log.append("VIOLATION " + violation.describe())
            report.violations.extend(quiesce_violations)
        report.invariant_log.extend(self._trap_log)
        for name in sorted(self.checker.checks_run):
            report.invariant_log.append(
                f"checked {name} x{self.checker.checks_run[name]}"
            )
        report.stats = {
            "workload": dict(self.workload.stats),
            "sim_time": round(self.plane.now, 6),
            "events": self.plane.loop.processed,
            "invariants_registered": len(self.checker.applicable("step"))
            + len(self.checker.applicable("quiesce")),
        }
        migrator = self.plane.migrator
        if migrator is not None:
            report.stats["reshard"] = dict(migrator.stats)
        if report.violations:
            first = report.violations[0]
            report.bundle = ReproBundle(
                seed=cfg.seed,
                failed_step=first.step,
                sim_time=first.sim_time,
                invariant=first.invariant,
                detail=first.detail,
                config=cfg.to_dict() | {"steps": cfg.steps},
                schedule_json=self.schedule.to_json(),
                flight=self._flight_dump(first),
            )
        return report

    def _flight_dump(self, violation: Violation) -> dict:
        """Flight-recorder state for the repro bundle: the event ring plus
        the complete span timeline of every transaction the violation's
        detail string names (full ids or the 8-char prefixes the
        invariant messages use)."""
        telemetry = self.plane.cluster.telemetry
        tracer = telemetry.tracer
        detail = f"{violation.invariant} {violation.detail}"
        implicated = [
            tx_id
            for tx_id in tracer.trace_ids()
            if tx_id in detail or tx_id[:8] in detail
        ]
        return {
            "events": telemetry.flight.dump(),
            "dropped": telemetry.flight.dropped,
            "traces": {tx_id: tracer.timeline(tx_id) for tx_id in implicated},
        }


def run_simtest(config: SimtestConfig | None = None) -> SimReport:
    """Build a harness and run it once (the CLI entry point's core)."""
    return SimHarness(config).run()
