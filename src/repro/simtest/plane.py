"""The fault plane: one chaos surface over both deployment shapes.

PR 2 scattered ad-hoc crash knobs across the stack — ``Network.crash``,
``FailureInjector.crash_now``, ``ShardedCluster.crash_coordinator``,
private recovery drivers on the cluster and the 2PC agent.  The
:class:`FaultPlane` gathers them behind one interface that treats a
plain :class:`~repro.core.cluster.SmartchainCluster` and a
:class:`~repro.sharding.cluster.ShardedCluster` uniformly, so a fault
schedule generated for one topology replays against the other.

Every mutation goes through the underlying failure injectors, which
means the node-side crash/recovery callbacks (mempool flush, catch-up,
RETURN re-enqueue, 2PC resume) fire exactly as they would in the
hand-written crash tests.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.consensus.byzantine import make_behavior
from repro.core.cluster import SmartchainCluster, TxRecord
from repro.sharding.cluster import ShardedCluster
from repro.sharding.coordinator import COORDINATOR_NODE, TwoPhaseCoordinator
from repro.sim.events import EventLoop

#: Shard label a single (unsharded) cluster is addressed by.
SINGLE_SHARD = "single"


class FaultPlane:
    """Uniform chaos-injection surface over a cluster deployment.

    Args:
        cluster: a :class:`ShardedCluster` or :class:`SmartchainCluster`.
    """

    def __init__(self, cluster: ShardedCluster | SmartchainCluster):
        self.cluster = cluster
        self.sharded = isinstance(cluster, ShardedCluster)
        if self.sharded:
            self.shard_ids: list[str] = list(cluster.shard_ids)
            self._shards: dict[str, SmartchainCluster] = dict(cluster.shards)
        else:
            self.shard_ids = [SINGLE_SHARD]
            self._shards = {SINGLE_SHARD: cluster}
        #: Shards whose network currently has a chaos delay installed.
        self._chaotic: set[str] = set()
        #: Shards currently split by :meth:`partition_minority`.
        self._partitioned: dict[str, list[str]] = {}
        #: shard -> {node -> byzantine behavior kind} currently lying.
        self._byzantine: dict[str, dict[str, str]] = {}
        #: (shard, node) -> last observed chain (block ids) of each
        #: honest node, for the prefix-monotonicity half of
        #: ``equivocation_contained``.  Reset on crash-restart, where a
        #: node legitimately rewinds to its durable prefix.
        self.chain_watch: dict[tuple[str, str], list[str]] = {}
        #: Transaction ids the adversarial workload submitted with forged
        #: or mutated signatures — ``no_forged_admission`` asserts none
        #: of them ever reaches an applied block.
        self.forged_tx_ids: set[str] = set()
        #: (loop position, result) memo for invariants.applied_transactions.
        self._applied_cache: tuple | None = None

    # -- topology ---------------------------------------------------------------

    @property
    def loop(self) -> EventLoop:
        return self.cluster.loop

    @property
    def now(self) -> float:
        return self.cluster.loop.clock.now

    def shard_cluster(self, shard_id: str) -> SmartchainCluster:
        return self._shards[shard_id]

    def nodes(self, shard_id: str) -> list[str]:
        """Validator ids of one shard, in deterministic order."""
        return list(self._shards[shard_id].engine.validator_order)

    @property
    def agents(self) -> dict[str, TwoPhaseCoordinator]:
        """2PC agents by shard (empty for a single cluster)."""
        return self.cluster.agents if self.sharded else {}

    def register_phase_listener(self, listener: Callable[[str, str, str], None]) -> None:
        """Observe 2PC protocol-phase transitions on every agent."""
        for agent in self.agents.values():
            agent.phase_listeners.append(listener)

    # -- elastic resharding -------------------------------------------------------

    @property
    def migrator(self):
        """The deployment's reshard controller (None for single clusters)."""
        return getattr(self.cluster, "migrator", None)

    def register_migration_listener(
        self, listener: Callable[[str, str], None]
    ) -> None:
        """Observe migration protocol-phase transitions on the controller."""
        migrator = self.migrator
        if migrator is not None:
            migrator.phase_listeners.append(listener)

    def start_migration(self, source: str, target: str) -> str:
        """Begin a live key migration between two existing shards.

        Raises:
            MigrationError: unknown shards, a conflicting active
                migration, or a crashed controller — schedules treat a
                refused start as a no-op fault.
        """
        migrator = self.migrator
        if migrator is None:
            raise ValueError("a single cluster has no reshard controller")
        return migrator.start_migration(source, target)

    def crash_migration_role(
        self, role: str, source: str, target: str, torn_bytes: int = 0
    ) -> None:
        """Crash one party of a live migration, restoring it from disk.

        ``source`` / ``target`` kill the shard's 2PC agent *and* its
        first validator mid-protocol (the worst case: fences, registry
        rows and shipped state must all survive the restart);
        ``controller`` power-fails the reshard controller itself, whose
        journal then decides roll-forward vs roll-back.
        """
        if role == "controller":
            self.migrator.restart_from_disk(torn_bytes=torn_bytes)
            return
        shard_id = source if role == "source" else target
        self.crash_restart_coordinator(shard_id, torn_bytes=torn_bytes)
        node_id = self.nodes(shard_id)[0]
        self.crash_restart(shard_id, node_id, torn_bytes=torn_bytes)

    # -- node faults ------------------------------------------------------------

    def crash_node(self, shard_id: str, node_id: str) -> None:
        self._shards[shard_id].failures.crash_now(node_id)

    def recover_node(self, shard_id: str, node_id: str) -> None:
        self._shards[shard_id].failures.recover_now(node_id)

    def crashed_nodes(self, shard_id: str) -> list[str]:
        shard = self._shards[shard_id]
        return [n for n in shard.engine.validator_order if shard.network.is_crashed(n)]

    # -- byzantine faults ---------------------------------------------------------

    def byzantine_cap(self, shard_id: str) -> int:
        """Max concurrently-byzantine validators a shard's quorum math
        tolerates: f = ⌊(n−1)/3⌋."""
        return (len(self.nodes(shard_id)) - 1) // 3

    def mark_byzantine(self, shard_id: str, node_id: str, kind: str) -> None:
        """Turn one validator into a liar (see
        :mod:`repro.consensus.byzantine` for the behavior kinds).

        Raises:
            ValueError: if the mark would push the shard past its
                f<n/3 cap — a schedule that over-corrupts a shard can no
                longer distinguish broken safety from starved quorums.
        """
        marked = self._byzantine.setdefault(shard_id, {})
        if node_id not in marked and len(marked) >= self.byzantine_cap(shard_id):
            raise ValueError(
                f"{shard_id}: marking {node_id} byzantine would exceed the "
                f"f<n/3 cap ({self.byzantine_cap(shard_id)})"
            )
        self._shards[shard_id].engine.validator(node_id).byzantine = make_behavior(kind)
        marked[node_id] = kind

    def heal_byzantine(self, shard_id: str, node_id: str) -> None:
        """Restore a marked validator to honesty and resync it — a node
        that withheld votes or froze its replica lags exactly like a
        briefly crashed one."""
        self._byzantine.get(shard_id, {}).pop(node_id, None)
        shard = self._shards[shard_id]
        shard.engine.validator(node_id).byzantine = None
        if not shard.network.is_crashed(node_id):
            shard.resync_node(node_id)

    def byzantine_nodes(self, shard_id: str) -> list[str]:
        """Currently-byzantine validator ids of one shard, sorted."""
        return sorted(self._byzantine.get(shard_id, {}))

    def byzantine_kind(self, shard_id: str, node_id: str) -> str | None:
        return self._byzantine.get(shard_id, {}).get(node_id)

    # -- crash-restart faults (durability required) --------------------------------

    @property
    def durable(self) -> bool:
        """True when the deployment journals to per-node SimDisks, i.e.
        the crash-restart fault family is expressible."""
        return bool(self._shards[self.shard_ids[0]].node_durability)

    def crash_restart(self, shard_id: str, node_id: str, torn_bytes: int = 0) -> None:
        """Kill a node, discard its memory, restore it purely from its
        SimDisk (losing the device's unsynced tail, optionally keeping
        ``torn_bytes`` of it as a torn write), and rejoin the cluster."""
        # A restart-from-disk legitimately rewinds the node to its durable
        # prefix; the chain watch must re-baseline or it would misread the
        # rewind as a byzantine rollback.
        self.chain_watch.pop((shard_id, node_id), None)
        self._shards[shard_id].restart_node_from_disk(node_id, torn_bytes=torn_bytes)

    def crash_restart_coordinator(self, shard_id: str, torn_bytes: int = 0) -> None:
        """Crash-restart one shard's 2PC agent purely from its SimDisk."""
        if not self.sharded:
            raise ValueError("a single cluster has no 2PC coordinator to restart")
        self.cluster.agents[shard_id].restart_from_disk(torn_bytes=torn_bytes)

    # -- coordinator faults -------------------------------------------------------

    def crash_coordinator(self, shard_id: str) -> None:
        if not self.sharded:
            raise ValueError("a single cluster has no 2PC coordinator to crash")
        self._shards[shard_id].failures.crash_now(COORDINATOR_NODE)

    def recover_coordinator(self, shard_id: str) -> None:
        if not self.sharded:
            raise ValueError("a single cluster has no 2PC coordinator to recover")
        self._shards[shard_id].failures.recover_now(COORDINATOR_NODE)

    def coordinator_crashed(self, shard_id: str) -> bool:
        return self.sharded and self.cluster.agents[shard_id].crashed

    # -- network faults -----------------------------------------------------------

    def partition_minority(self, shard_id: str, minority: int = 1) -> None:
        """Split one shard's validator network: the last ``minority``
        nodes (by validator order) are isolated from the rest.  The
        majority keeps a BFT quorum, so the shard stays live while the
        minority silently falls behind."""
        order = self.nodes(shard_id)
        minority = max(1, min(minority, len(order) - 1))
        isolated = order[-minority:]
        kept = order[:-minority]
        self._shards[shard_id].network.partition([set(kept), set(isolated)])
        self._partitioned[shard_id] = isolated

    def heal(self, shard_id: str) -> None:
        """Remove a partition and resync the nodes it isolated — a healed
        minority lags exactly like a briefly crashed node does."""
        shard = self._shards[shard_id]
        shard.network.heal_partition()
        for node_id in self._partitioned.pop(shard_id, []):
            if not shard.network.is_crashed(node_id):
                shard.resync_node(node_id)

    def set_chaos_delay(self, shard_id: str, extra_delay: float) -> None:
        """Install (or with 0.0 clear) message delay/reorder chaos on one
        shard's validator network."""
        self._shards[shard_id].network.set_chaos(extra_delay)
        if extra_delay > 0:
            self._chaotic.add(shard_id)
        else:
            self._chaotic.discard(shard_id)

    def time_jump(self, delta: float) -> None:
        """Advance simulated time without running anything — every armed
        timer and in-flight message becomes due at once (clock skew /
        scheduler stall)."""
        self.cluster.loop.clock.advance(delta)

    # -- driving ------------------------------------------------------------------

    def submit_payload(self, payload: dict[str, Any], **kwargs: Any):
        return self.cluster.submit_payload(payload, **kwargs)

    def record_for(self, tx_id: str) -> TxRecord | None:
        if self.sharded:
            return self.cluster.record_for(tx_id)
        return self.cluster.records.get(tx_id)

    def run_slice(self, duration: float, max_events: int = 250_000) -> None:
        """Advance the shared loop by one harness step's worth of time."""
        self.loop.run(until=self.loop.clock.now + duration, max_events=max_events)

    # -- quiesce -------------------------------------------------------------------

    def quiesce(self, max_events: int = 2_000_000, rounds: int = 4) -> None:
        """Repair everything and drain the deployment to a fixpoint.

        Heals partitions, clears chaos, recovers every crashed node and
        coordinator, then alternates ``run_until_idle`` with 2PC
        ``resume()`` kicks until no agent holds undecided state (bounded
        by ``rounds`` — parked retries need at most one kick per side).
        """
        for shard_id in self.shard_ids:
            for node_id in list(self._byzantine.get(shard_id, {})):
                self.heal_byzantine(shard_id, node_id)
            if shard_id in self._partitioned:
                self.heal(shard_id)
            else:
                self._shards[shard_id].network.heal_partition()
            self.set_chaos_delay(shard_id, 0.0)
            for node_id in self.crashed_nodes(shard_id):
                self.recover_node(shard_id, node_id)
            if self.coordinator_crashed(shard_id):
                self.recover_coordinator(shard_id)
        migrator = self.migrator
        if migrator is not None and migrator.crashed:
            migrator.recover()
        # A heal is not a crash: nodes that merely lagged still need the
        # catch-up kick recovery would have given them.
        for shard_id in self.shard_ids:
            shard = self._shards[shard_id]
            for node_id in shard.engine.validator_order:
                shard.resync_node(node_id)
        self.loop.run_until_idle(max_events=max_events)
        for _ in range(rounds):
            unfinished = any(
                agent.active_locks() or agent.unfinished()
                for agent in self.agents.values()
            ) or bool(migrator is not None and migrator.unfinished())
            if not unfinished:
                break
            for agent in self.agents.values():
                agent.resume()
            if migrator is not None:
                migrator.resume()
            self.loop.run_until_idle(max_events=max_events)
