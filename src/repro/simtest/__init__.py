"""Deterministic chaos testing (simulation testing) for the deployment.

FoundationDB-style DST over the simulated cluster: one seed generates a
fault schedule (crashes, partitions, delays, 2PC phase traps) and a
workload trace, an invariant registry judges every step, and failures
ship as replayable ``(seed, schedule, invariant)`` bundles.

Entry points::

    from repro.simtest import SimHarness, SimtestConfig
    report = SimHarness(SimtestConfig(seed=7, steps=500)).run()

or from the shell::

    python -m repro simtest --seed 7 --steps 500
"""

from repro.simtest.harness import (
    ReproBundle,
    SimHarness,
    SimReport,
    SimtestConfig,
    run_simtest,
)
from repro.simtest.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantChecker,
    Violation,
)
from repro.simtest.plane import FaultPlane
from repro.simtest.schedule import FaultAction, Schedule, ScheduleGenerator
from repro.simtest.workload import TraceWorkload

__all__ = [
    "DEFAULT_INVARIANTS",
    "FaultAction",
    "FaultPlane",
    "Invariant",
    "InvariantChecker",
    "ReproBundle",
    "Schedule",
    "ScheduleGenerator",
    "SimHarness",
    "SimReport",
    "SimtestConfig",
    "TraceWorkload",
    "Violation",
    "run_simtest",
]
