"""Web3-style client for the baseline chain.

Wraps :class:`~repro.ethereum.chain.QuorumChain` with the ergonomic calls
a Truffle test suite would make: deploy, method transactions, native
transfers, and read-only views.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import EvmError
from repro.ethereum.chain import EthTxRecord, QuorumChain
from repro.ethereum.contract import CallContext
from repro.ethereum.evmstate import StorageView
from repro.ethereum.gas import GasMeter


class Web3Client:
    """Client bound to one QuorumChain deployment."""

    def __init__(self, chain: QuorumChain):
        self.chain = chain

    # -- transactions ------------------------------------------------------------------

    def deploy(self, contract_class_name: str, name: str, sender: str) -> EthTxRecord:
        """Deploy a registered contract class under a deployment name."""
        return self.chain.submit_and_settle(
            {
                "type": "deploy",
                "contract": contract_class_name,
                "name": name,
                "from": sender,
                "args": [],
            }
        )

    def transact(
        self,
        contract_name: str,
        method: str,
        args: list[Any],
        sender: str,
        value: int = 0,
        estimate_hints: dict[str, int] | None = None,
        settle: bool = True,
    ) -> EthTxRecord | str:
        """Send a contract-method transaction.

        Args:
            estimate_hints: extra size hints for the gas oracle (e.g.
                capability counts for ``create_bid``).
            settle: when True, run the chain to idle and return the full
                record; when False, return the tx id immediately (used by
                throughput workloads that batch submissions).
        """
        payload: dict[str, Any] = {
            "type": "call",
            "contract": contract_name,
            "method": method,
            "args": args,
            "from": sender,
            "value": value,
        }
        if estimate_hints:
            payload["estimate_hints"] = estimate_hints
        if settle:
            return self.chain.submit_and_settle(payload)
        return self.chain.submit(payload)

    def native_transfer(self, sender: str, recipient: str, value: int, settle: bool = True) -> EthTxRecord | str:
        """The native TRANSFER primitive (Fig. 2's left bar)."""
        payload = {"type": "transfer", "from": sender, "to": recipient, "value": value}
        if settle:
            return self.chain.submit_and_settle(payload)
        return self.chain.submit(payload)

    # -- reads --------------------------------------------------------------------------

    def call_view(self, contract_name: str, method: str, args: list[Any], sender: str = "0xview") -> Any:
        """Execute a view function locally (no consensus, gas not billed).

        Raises:
            EvmError: if the contract is not deployed.
        """
        application = self.chain.any_application()
        address = application.deployed.get(contract_name)
        contract = application.runtime.contracts.get(address) if address else None
        if contract is None:
            raise EvmError(f"contract {contract_name!r} is not deployed")
        meter = GasMeter()
        ctx = CallContext(
            sender=sender,
            value=0,
            meter=meter,
            storage=StorageView(application.runtime.state, address, meter),
        )
        return contract.dispatch(ctx, method, list(args))

    def balance(self, address: str) -> int:
        """Account balance on the canonical node."""
        return self.chain.any_application().runtime.state.balance(address)

    def receipt(self, tx_id: str) -> EthTxRecord | None:
        return self.chain.records.get(tx_id)
