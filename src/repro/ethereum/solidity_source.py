"""The equivalent Solidity contract source — the usability baseline.

Section 5.2.2: "SmartchainDB didn't require any user-implemented code,
whereas the equivalent smart contract required 175 lines of code to
establish one marketplace."  This module carries that contract verbatim
(as a faithful reconstruction of the Fig. 1 skeleton, fleshed out) so the
usability benchmark can *count* rather than assert the number.
"""

from __future__ import annotations

REVERSE_AUCTION_SOLIDITY = """\
// SPDX-License-Identifier: MIT
pragma solidity ^0.8.17;

/// Reverse-auction procurement marketplace (paper Fig. 1, fleshed out).
contract ReverseAuctionMarketplace {
    struct Asset {
        uint256 id;
        address owner;
        string[] capabilities;
        string metadata;
    }

    struct Request {
        uint256 id;
        address buyer;
        string[] capabilities;
        string metadata;
        bool open;
    }

    struct Bid {
        uint256 id;
        uint256 requestId;
        address supplier;
        uint256 assetId;
        uint256 deposit;
        bool refunded;
        bool accepted;
    }

    address public owner;
    Asset[] public assets;
    Request[] public requests;
    Bid[] public bids;

    event AssetCreated(uint256 indexed assetId, address indexed owner);
    event RequestCreated(uint256 indexed rfqId, address indexed buyer);
    event BidCreated(uint256 indexed bidId, uint256 indexed rfqId, address supplier);
    event BidAccepted(uint256 indexed rfqId, uint256 indexed bidId, uint256 refunds);
    event BidWithdrawn(uint256 indexed bidId);
    event AssetTransferred(uint256 indexed assetId, address indexed to);

    constructor() {
        owner = msg.sender;
    }

    function compareStrings(string memory a, string memory b) internal pure returns (bool) {
        return keccak256(abi.encodePacked(a)) == keccak256(abi.encodePacked(b));
    }

    function createAsset(string[] memory capabilities, string memory metadata)
        external
        returns (uint256)
    {
        require(capabilities.length > 0, "asset needs at least one capability");
        uint256 assetId = assets.length + 1;
        Asset storage asset = assets.push();
        asset.id = assetId;
        asset.owner = msg.sender;
        asset.metadata = metadata;
        for (uint256 i = 0; i < capabilities.length; i++) {
            asset.capabilities.push(capabilities[i]);
        }
        emit AssetCreated(assetId, msg.sender);
        return assetId;
    }

    function createrfq(string[] memory capabilities, string memory metadata)
        external
        returns (uint256)
    {
        require(capabilities.length > 0, "rfq needs at least one capability");
        uint256 rfqId = requests.length + 1;
        Request storage request = requests.push();
        request.id = rfqId;
        request.buyer = msg.sender;
        request.metadata = metadata;
        request.open = true;
        for (uint256 i = 0; i < capabilities.length; i++) {
            request.capabilities.push(capabilities[i]);
        }
        emit RequestCreated(rfqId, msg.sender);
        return rfqId;
    }

    function findRequest(uint256 rfqId) internal view returns (Request storage) {
        for (uint256 i = 0; i < requests.length; i++) {
            if (requests[i].id == rfqId) {
                return requests[i];
            }
        }
        revert("request not found");
    }

    function findAsset(uint256 assetId) internal view returns (Asset storage) {
        for (uint256 i = 0; i < assets.length; i++) {
            if (assets[i].id == assetId) {
                return assets[i];
            }
        }
        revert("asset not found");
    }

    function checkValidBid(uint256 rfqId, uint256 assetId) internal view returns (bool) {
        Request storage request = findRequest(rfqId);
        Asset storage asset = findAsset(assetId);
        require(request.open, "request is closed");
        require(asset.owner == msg.sender, "bidder does not own the asset");
        for (uint256 i = 0; i < request.capabilities.length; i++) {
            bool found = false;
            for (uint256 j = 0; j < asset.capabilities.length; j++) {
                if (compareStrings(request.capabilities[i], asset.capabilities[j])) {
                    found = true;
                }
            }
            if (!found) {
                return false;
            }
        }
        return true;
    }

    function createbid(uint256 rfqId, uint256 assetId) external payable returns (uint256) {
        require(msg.value > 0, "bid requires an escrow deposit");
        require(checkValidBid(rfqId, assetId), "insufficient capabilities");
        for (uint256 i = 0; i < bids.length; i++) {
            Bid storage existing = bids[i];
            require(
                !(existing.requestId == rfqId && existing.supplier == msg.sender
                    && !existing.refunded && !existing.accepted),
                "duplicate bid"
            );
        }
        uint256 bidId = bids.length + 1;
        Bid storage bid = bids.push();
        bid.id = bidId;
        bid.requestId = rfqId;
        bid.supplier = msg.sender;
        bid.assetId = assetId;
        bid.deposit = msg.value;
        emit BidCreated(bidId, rfqId, msg.sender);
        return bidId;
    }

    function acceptBid(uint256 rfqId, uint256 winningBidId) external returns (uint256) {
        Request storage request = findRequest(rfqId);
        require(request.buyer == msg.sender, "only the buyer may accept");
        require(request.open, "request already settled");
        uint256 refunds = 0;
        uint256 winnerIndex = type(uint256).max;
        for (uint256 i = 0; i < bids.length; i++) {
            Bid storage bid = bids[i];
            if (bid.requestId != rfqId || bid.refunded || bid.accepted) {
                continue;
            }
            if (bid.id == winningBidId) {
                winnerIndex = i;
                continue;
            }
            bid.refunded = true;
            payable(bid.supplier).transfer(bid.deposit);
            refunds++;
        }
        require(winnerIndex != type(uint256).max, "winning bid not found for request");
        Bid storage winner = bids[winnerIndex];
        winner.accepted = true;
        Asset storage asset = findAsset(winner.assetId);
        asset.owner = msg.sender;
        payable(msg.sender).transfer(winner.deposit);
        request.open = false;
        emit BidAccepted(rfqId, winningBidId, refunds);
        return refunds;
    }

    function withdrawBid(uint256 bidId) external {
        for (uint256 i = 0; i < bids.length; i++) {
            Bid storage bid = bids[i];
            if (bid.id == bidId) {
                require(bid.supplier == msg.sender, "only the bidder may withdraw");
                require(!bid.refunded && !bid.accepted, "bid already settled");
                bid.refunded = true;
                payable(bid.supplier).transfer(bid.deposit);
                emit BidWithdrawn(bidId);
                return;
            }
        }
        revert("bid not found");
    }

    function transferAsset(uint256 assetId, address to) external {
        Asset storage asset = findAsset(assetId);
        require(asset.owner == msg.sender, "only the owner may transfer");
        asset.owner = to;
        emit AssetTransferred(assetId, to);
    }
}
"""


def count_code_lines(source: str = REVERSE_AUCTION_SOLIDITY) -> int:
    """Non-blank, non-comment lines of the Solidity source."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("//") or stripped.startswith("/*") or stripped.startswith("*"):
            continue
        count += 1
    return count


#: User-written lines needed to stand up a SmartchainDB marketplace: the
#: declarative types ship with the platform.
SMARTCHAINDB_USER_LOC = 0
