"""EVM-style world state: accounts, balances and 2^256-slot storage.

The paper's analysis (Section 5.2.1) pins ETH-SC's latency growth on "the
smart contract's storage structure, comprising a vast array of 2^256
slots" with keccak-placed mapping entries.  This module models exactly
that: per-account sparse storage keyed by 256-bit slot indices, with
mapping entries living at ``keccak(key . base_slot)`` and dynamic-array
elements at ``keccak(base_slot) + i`` — so that contract-level data
structures pay per-slot gas for every word they touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import RevertError
from repro.crypto.hashing import keccak_like_slot
from repro.ethereum.gas import (
    G_SLOAD_COLD,
    G_SLOAD_WARM,
    G_SSTORE_CLEAR_REFUND,
    G_SSTORE_RESET,
    G_SSTORE_SET,
    GasMeter,
    keccak_gas,
    words,
)

WORD_BYTES = 32


@dataclass
class Account:
    """One address's state."""

    balance: int = 0
    nonce: int = 0
    storage: dict[int, int] = field(default_factory=dict)


class WorldState:
    """Addresses -> accounts, with metered storage access helpers."""

    def __init__(self) -> None:
        self._accounts: dict[str, Account] = {}

    def account(self, address: str) -> Account:
        entry = self._accounts.get(address)
        if entry is None:
            entry = Account()
            self._accounts[address] = entry
        return entry

    def balance(self, address: str) -> int:
        return self.account(address).balance

    def credit(self, address: str, amount: int) -> None:
        self.account(address).balance += amount

    def debit(self, address: str, amount: int) -> None:
        """Raises RevertError on insufficient balance."""
        account = self.account(address)
        if account.balance < amount:
            raise RevertError(
                f"insufficient balance: {account.balance} < {amount} at {address[:10]}"
            )
        account.balance -= amount

    def addresses(self) -> Iterator[str]:
        return iter(self._accounts)


class StorageView:
    """Gas-metered storage access for one contract account.

    Tracks warm slots per execution (EIP-2929-style warm/cold pricing).
    """

    def __init__(self, state: WorldState, address: str, meter: GasMeter):
        self._account = state.account(address)
        self._meter = meter
        self._warm: set[int] = set()

    def sload(self, slot: int) -> int:
        """Read a storage word (cold reads cost 21x warm reads)."""
        if slot in self._warm:
            self._meter.charge(G_SLOAD_WARM)
        else:
            self._meter.charge(G_SLOAD_COLD)
            self._warm.add(slot)
        return self._account.storage.get(slot, 0)

    def sstore(self, slot: int, value: int) -> None:
        """Write a storage word (set/reset/clear pricing)."""
        current = self._account.storage.get(slot, 0)
        if current == 0 and value != 0:
            self._meter.charge(G_SSTORE_SET)
        elif current != 0 and value == 0:
            self._meter.charge(G_SSTORE_RESET)
            self._meter.add_refund(G_SSTORE_CLEAR_REFUND)
        else:
            self._meter.charge(G_SSTORE_RESET)
        if value == 0:
            self._account.storage.pop(slot, None)
        else:
            self._account.storage[slot] = value
        self._warm.add(slot)

    # -- Solidity layout helpers ---------------------------------------------------

    def mapping_slot(self, base_slot: int, key: str | int) -> int:
        """Slot of ``mapping[key]`` at ``base_slot`` (keccak-placed).

        Charges the keccak gas Solidity pays to compute the location.
        """
        key_bytes = key.to_bytes(32, "big") if isinstance(key, int) else str(key).encode()
        self._meter.charge(keccak_gas(len(key_bytes) + WORD_BYTES))
        return keccak_like_slot(key_bytes + base_slot.to_bytes(32, "big"))

    def array_data_slot(self, base_slot: int, index: int) -> int:
        """Slot of dynamic array element ``i`` (keccak(base) + i)."""
        self._meter.charge(keccak_gas(WORD_BYTES))
        return (keccak_like_slot(base_slot.to_bytes(32, "big")) + index) % (1 << 256)

    def store_string(self, slot: int, text: str) -> None:
        """Write a string: length word + one word per 32 bytes."""
        data = text.encode()
        self.sstore(slot, len(data))
        for index in range(words(len(data))):
            chunk = data[index * WORD_BYTES : (index + 1) * WORD_BYTES]
            word_slot = self.array_data_slot(slot, index)
            self.sstore(word_slot, int.from_bytes(chunk.ljust(WORD_BYTES, b"\0"), "big"))

    def load_string_gas(self, slot: int, text_len: int) -> None:
        """Charge the reads needed to materialise a stored string."""
        self.sload(slot)
        for index in range(words(text_len)):
            self.sload(self.array_data_slot(slot, index))
