"""Gas schedule for the smart-contract baseline.

Constants follow the Ethereum yellow-paper / Berlin values closely enough
for the evaluation's purposes: storage writes dominate, keccak hashing of
strings is priced per word (which is what makes the Solidity
``compareStrings`` helper "costly ... in terms of GAS usage",
Section 5.2.1), and calldata is priced per byte so transaction *size*
directly inflates cost — the mechanism behind Fig. 7's ETH-SC growth.
"""

from __future__ import annotations

from dataclasses import dataclass

# Intrinsic transaction costs.
G_TRANSACTION = 21_000
G_TXDATA_NONZERO = 16
G_TXDATA_ZERO = 4

# Storage.
G_SSTORE_SET = 20_000      # zero -> nonzero
G_SSTORE_RESET = 5_000     # nonzero -> nonzero
G_SSTORE_CLEAR_REFUND = 4_800
G_SLOAD_COLD = 2_100
G_SLOAD_WARM = 100

# Hashing / memory / compute.
G_KECCAK_BASE = 30
G_KECCAK_WORD = 6
G_MEMORY_WORD = 3
G_ARITH_OP = 5
G_LOG_BASE = 375
G_LOG_TOPIC = 375
G_LOG_DATA_BYTE = 8

# Value transfer inside a contract.
G_CALL_VALUE = 9_000

#: Simulated execution speed of a validator (gas per second).  Real
#: permissioned-EVM nodes execute on the order of tens of Mgas/s; Quorum
#: with heavy string workloads in the paper's experiments behaves far
#: slower end-to-end.  This constant converts metered gas into simulated
#: compute seconds.
GAS_PER_SECOND = 1_500_000.0

#: Default per-transaction gas limit (generous, permissioned-network style).
DEFAULT_TX_GAS_LIMIT = 50_000_000


def words(n_bytes: int) -> int:
    """32-byte EVM words needed to hold ``n_bytes``."""
    return (n_bytes + 31) // 32


def keccak_gas(n_bytes: int) -> int:
    """Gas to keccak-hash ``n_bytes`` (string compare does this twice)."""
    return G_KECCAK_BASE + G_KECCAK_WORD * words(n_bytes)


def calldata_gas(data: bytes) -> int:
    """Intrinsic calldata gas (zero bytes are cheaper)."""
    zeros = data.count(0)
    return G_TXDATA_ZERO * zeros + G_TXDATA_NONZERO * (len(data) - zeros)


def execution_seconds(gas: int) -> float:
    """Convert metered gas into simulated execution seconds."""
    return gas / GAS_PER_SECOND


@dataclass
class GasMeter:
    """Per-execution gas accounting.

    Raises :class:`~repro.common.errors.OutOfGasError` past the limit.
    """

    limit: int = DEFAULT_TX_GAS_LIMIT
    used: int = 0
    refund: int = 0

    def charge(self, amount: int) -> None:
        """Consume ``amount`` gas.

        Raises:
            OutOfGasError: if the limit is exceeded.
        """
        from repro.common.errors import OutOfGasError

        self.used += amount
        if self.used > self.limit:
            raise OutOfGasError(f"out of gas: used {self.used} > limit {self.limit}")

    def add_refund(self, amount: int) -> None:
        self.refund += amount

    @property
    def effective(self) -> int:
        """Gas billed after refunds (capped at used/5 like post-London)."""
        return self.used - min(self.refund, self.used // 5)
