"""The Quorum-style baseline chain: IBFT + sequential contract execution.

Wires the shared BFT engine (IBFT configuration: no pipelining, block gas
limit, minimum block period) to an :class:`EthApplication` that executes
native transfers and contract calls with full gas metering.  Execution is
**sequential** — the paper's Section 1 observation that "most platforms,
including Ethereum, adopt sequential execution, which lowers throughput"
is reproduced structurally: blocks are gas-bounded and every validator
re-executes every transaction before voting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consensus.abci import envelope_for
from repro.consensus.bft import BftConfig, BftEngine
from repro.consensus.ibft import ibft_config, make_ibft_cluster
from repro.consensus.types import Block, TxEnvelope
from repro.ethereum import auction
from repro.ethereum.contract import Contract, EvmRuntime, ExecutionResult
from repro.ethereum.gas import DEFAULT_TX_GAS_LIMIT, G_TRANSACTION, execution_seconds
from repro.sim.events import EventLoop
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SeededRng

#: Contract classes deployable by name (payloads must be plain data).
CONTRACT_CLASSES: dict[str, type[Contract]] = {
    "ReverseAuctionMarketplace": auction.ReverseAuctionMarketplace,
}


class EthApplication:
    """Replicated EVM application behind IBFT."""

    def __init__(self, node_id: str, initial_balances: dict[str, int] | None = None):
        self.node_id = node_id
        self.runtime = EvmRuntime()
        #: Deterministic deployment addresses, name -> address.
        self.deployed: dict[str, str] = {}
        self.results: dict[str, ExecutionResult] = {}
        for address, balance in (initial_balances or {}).items():
            self.runtime.state.credit(address, balance)

    # -- Application protocol -------------------------------------------------------

    def check_tx(self, envelope: TxEnvelope) -> bool:
        payload = envelope.payload
        return isinstance(payload, dict) and payload.get("type") in (
            "transfer",
            "call",
            "deploy",
        )

    def deliver_tx(self, envelope: TxEnvelope) -> bool:
        payload = envelope.payload
        kind = payload["type"]
        if kind == "transfer":
            result = self.runtime.native_transfer(
                payload["from"], payload["to"], payload.get("value", 0)
            )
        elif kind == "deploy":
            contract_class = CONTRACT_CLASSES[payload["contract"]]
            address, result = self.runtime.deploy(
                contract_class, payload["from"], payload.get("args", [])
            )
            self.deployed[payload["name"]] = address
        else:
            address = payload.get("to") or self.deployed.get(payload["contract"])
            if address is None:
                return False
            result = self.runtime.execute_call(
                address,
                payload["method"],
                payload.get("args", []),
                sender=payload["from"],
                value=payload.get("value", 0),
                gas_limit=payload.get("gas_limit", DEFAULT_TX_GAS_LIMIT),
            )
        self.results[envelope.tx_id] = result
        return result.success

    def commit_block(self, block: Block, delivered: list[TxEnvelope]) -> None:
        # World state was mutated in deliver_tx (sequential execution);
        # block commit persists headers only.
        pass

    def execution_cost(self, envelope: TxEnvelope) -> float:
        """Gas-proportional simulated compute (envelope.weight is gas)."""
        return execution_seconds(envelope.weight)

    def commit_cost(self, block: Block) -> float:
        return 0.002 + block.size_bytes * 5e-9

    # -- local views ------------------------------------------------------------------

    def registry_counts(self, contract_name: str) -> dict[str, int]:
        """Current registry sizes, feeding the gas oracle."""
        address = self.deployed.get(contract_name)
        contract = self.runtime.contracts.get(address) if address else None
        if contract is None or not hasattr(contract, "_mirror"):
            return {"assets": 0, "requests": 0, "bids": 0}
        mirror = contract._mirror  # type: ignore[attr-defined]
        return {
            "assets": len(mirror.get("assets", [])),
            "requests": len(mirror.get("requests", [])),
            "bids": len(mirror.get("bids", [])),
        }


@dataclass
class EthTxRecord:
    """Lifecycle record mirroring the SmartchainDB side's TxRecord."""

    tx_id: str
    kind: str
    method: str | None
    size_bytes: int
    gas_estimate: int
    submitted_at: float
    committed_at: float | None = None
    gas_used: int | None = None
    success: bool | None = None

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


@dataclass
class QuorumChainConfig:
    """Deployment knobs for the baseline network."""

    n_validators: int = 4
    seed: int = 2024
    consensus: BftConfig = field(default_factory=ibft_config)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    initial_balance: int = 10**21


class QuorumChain:
    """A permissioned Ethereum network running the marketplace contract."""

    def __init__(self, config: QuorumChainConfig | None = None, accounts: list[str] | None = None):
        self.config = config or QuorumChainConfig()
        self.loop = EventLoop()
        self.rng = SeededRng(self.config.seed)
        self.network = Network(self.loop, self.rng, self.config.network)
        self.applications: dict[str, EthApplication] = {}
        balances = {account: self.config.initial_balance for account in (accounts or [])}

        def factory(node_id: str) -> EthApplication:
            application = EthApplication(node_id, initial_balances=balances)
            self.applications[node_id] = application
            return application

        self.engine: BftEngine = make_ibft_cluster(
            self.loop,
            self.network,
            factory,
            n_validators=self.config.n_validators,
            config=self.config.consensus,
        )
        self.records: dict[str, EthTxRecord] = {}
        self._tx_counter = 0
        self.engine.commit_listeners.append(self._on_commit)

    # -- submission --------------------------------------------------------------------

    def _next_tx_id(self, payload: dict[str, Any]) -> str:
        from repro.crypto.hashing import hash_document

        self._tx_counter += 1
        return hash_document({"n": self._tx_counter, "payload": repr(payload)})

    def submit(self, payload: dict[str, Any], gas_estimate: int | None = None) -> str:
        """Submit a transaction to a random validator; returns its id."""
        from repro.common.encoding import canonical_bytes

        tx_id = self._next_tx_id(payload)
        receiver = self.rng.choice("eth-receiver", self.engine.validator_order)
        size_bytes = len(canonical_bytes({k: repr(v) for k, v in payload.items()}))
        if gas_estimate is None:
            gas_estimate = self.estimate_gas(payload)
        envelope = envelope_for(
            payload, tx_id, size_bytes, weight=gas_estimate, now=self.loop.clock.now
        )
        self.records[tx_id] = EthTxRecord(
            tx_id=tx_id,
            kind=payload["type"],
            method=payload.get("method"),
            size_bytes=size_bytes,
            gas_estimate=gas_estimate,
            submitted_at=self.loop.clock.now,
        )
        self.engine.validator(receiver).submit_transaction(envelope)
        return tx_id

    def estimate_gas(self, payload: dict[str, Any]) -> int:
        """Gas oracle: native transfers are fixed; calls use the contract's
        structural estimator against current registry sizes."""
        if payload["type"] == "transfer":
            return G_TRANSACTION
        if payload["type"] == "deploy":
            return 1_200_000
        application = self.applications[self.engine.validator_order[0]]
        counts = application.registry_counts(payload.get("contract", ""))
        counts.update(payload.get("estimate_hints", {}))
        return auction.estimate_gas(
            payload["method"], payload.get("args", []), counts, payload.get("value", 0)
        )

    # -- commit tracking ----------------------------------------------------------------

    def _on_commit(self, record) -> None:
        application = self.applications[record.node_id]
        for envelope in record.block.transactions:
            tx_record = self.records.get(envelope.tx_id)
            if tx_record is None or tx_record.committed_at is not None:
                continue
            tx_record.committed_at = record.committed_at
            result = application.results.get(envelope.tx_id)
            if result is not None:
                tx_record.gas_used = result.gas_used
                tx_record.success = result.success

    # -- convenience ---------------------------------------------------------------------

    def run(self, duration: float | None = None, max_events: int = 5_000_000) -> None:
        if duration is None:
            self.loop.run_until_idle(max_events=max_events)
        else:
            self.loop.run(until=self.loop.clock.now + duration, max_events=max_events)

    def submit_and_settle(self, payload: dict[str, Any]) -> EthTxRecord:
        tx_id = self.submit(payload)
        self.loop.run_until_idle(max_events=5_000_000)
        return self.records[tx_id]

    def any_application(self) -> EthApplication:
        return self.applications[self.engine.validator_order[0]]

    def committed_records(self) -> list[EthTxRecord]:
        return [record for record in self.records.values() if record.committed_at is not None]
