"""The reverse-auction marketplace smart contract (paper Fig. 1).

The ETH-SC baseline: a Solidity-style procurement marketplace where
buyers post RFQs (``createrfq``), suppliers answer with asset-backed,
deposit-escrowed bids (``createbid`` + ``checkValidBid``), and the buyer
settles with ``acceptBid`` — refunding every losing deposit.

The implementation deliberately preserves the cost structure the paper's
Section 5.2.1 analysis attributes to the contract:

* registries are dynamic arrays, so **finding an item is an O(n) scan**
  with a cold SLOAD per element ("each map item's retrieval takes O(n)
  time");
* bid validation compares every requested capability against every
  offered capability with ``compare_strings`` — **O(n^2) keccak work**
  ("the quadratic time complexity for BID transactions results from a
  nested loop comparing each CREATE asset capability with every REQUEST
  capability");
* every struct field and capability string is written through metered
  keccak-placed storage slots.
"""

from __future__ import annotations

from typing import Any

from repro.ethereum.contract import CallContext, Contract
from repro.ethereum.evmstate import WorldState
from repro.ethereum.gas import (
    G_ARITH_OP,
    G_TRANSACTION,
    calldata_gas,
    keccak_gas,
    words,
)

# Storage base slots (Solidity declaration order).
SLOT_OWNER = 0
SLOT_ASSETS = 1
SLOT_REQUESTS = 2
SLOT_BIDS = 3
SLOT_ASSET_COUNT = 4
SLOT_REQUEST_COUNT = 5
SLOT_BID_COUNT = 6


def compare_strings(ctx: CallContext, left: str, right: str) -> bool:
    """Solidity's idiomatic ``keccak(a) == keccak(b)`` string equality.

    Charges a keccak of each operand — the "costly compareStrings()
    function in terms of GAS usage".
    """
    ctx.meter.charge(keccak_gas(len(left.encode())))
    ctx.meter.charge(keccak_gas(len(right.encode())))
    return left == right


class ReverseAuctionMarketplace(Contract):
    """Equivalent of the paper's ~175-line Solidity marketplace."""

    def __init__(self, address: str, state: WorldState):
        super().__init__(address, state)
        # Canonical logic state (replicated deterministically across
        # nodes); every access is mirrored by metered storage traffic.
        self._mirror: dict[str, Any] = {
            "owner": None,
            "assets": [],     # {id, owner, capabilities, metadata}
            "requests": [],   # {id, buyer, capabilities, metadata, open}
            "bids": [],       # {id, request_id, supplier, asset_id, deposit, refunded, accepted}
        }

    # -- constructor ---------------------------------------------------------------

    def constructor(self, ctx: CallContext) -> None:
        """Record the deployer as the marketplace owner."""
        self._mirror["owner"] = ctx.sender
        ctx.storage.sstore(SLOT_OWNER, 1)

    # -- internal metered helpers -----------------------------------------------------

    def _store_struct_strings(self, ctx: CallContext, base_slot: int, strings: list[str]) -> None:
        """Persist a list of strings as array-of-string storage."""
        ctx.storage.sstore(base_slot, len(strings))
        for index, text in enumerate(strings):
            element_slot = ctx.storage.array_data_slot(base_slot, index)
            ctx.storage.store_string(element_slot, text)

    def _scan(self, ctx: CallContext, registry: str, base_slot: int, item_id: int) -> dict[str, Any]:
        """O(n) registry lookup with a cold SLOAD per scanned element.

        Raises (reverts) when the id does not exist.
        """
        items = self._mirror[registry]
        for index, item in enumerate(items):
            ctx.storage.sload(ctx.storage.array_data_slot(base_slot, index))
            ctx.meter.charge(G_ARITH_OP)
            if item["id"] == item_id:
                return item
        ctx.require(False, f"{registry[:-1]} {item_id} not found")
        raise AssertionError  # unreachable; require reverts

    def _load_capabilities(self, ctx: CallContext, item: dict[str, Any], base_slot: int) -> list[str]:
        """Charge the reads needed to materialise stored capability strings."""
        for index, capability in enumerate(item["capabilities"]):
            element_slot = ctx.storage.array_data_slot(base_slot, index)
            ctx.storage.load_string_gas(element_slot, len(capability.encode()))
        return item["capabilities"]

    # -- public API (mirrors the Fig. 1 skeleton) -----------------------------------------

    def create_asset(self, ctx: CallContext, capabilities: list[str], metadata: str = "") -> int:
        """Register a supplier asset with its production capabilities."""
        ctx.require(len(capabilities) > 0, "asset needs at least one capability")
        asset_id = len(self._mirror["assets"]) + 1
        entry = {
            "id": asset_id,
            "owner": ctx.sender,
            "capabilities": list(capabilities),
            "metadata": metadata,
        }
        self._mirror["assets"].append(entry)
        head_slot = ctx.storage.array_data_slot(SLOT_ASSETS, asset_id - 1)
        ctx.storage.sstore(head_slot, asset_id)
        ctx.storage.sstore(ctx.storage.mapping_slot(SLOT_ASSETS, f"owner:{asset_id}"), 1)
        self._store_struct_strings(
            ctx, ctx.storage.mapping_slot(SLOT_ASSETS, f"caps:{asset_id}"), capabilities
        )
        if metadata:
            ctx.storage.store_string(
                ctx.storage.mapping_slot(SLOT_ASSETS, f"meta:{asset_id}"), metadata
            )
        ctx.storage.sstore(SLOT_ASSET_COUNT, asset_id)
        ctx.emit("AssetCreated", asset_id=asset_id, owner=ctx.sender)
        return asset_id

    def create_rfq(self, ctx: CallContext, capabilities: list[str], metadata: str = "") -> int:
        """``createrfq``: a buyer posts a request-for-quotes."""
        ctx.require(len(capabilities) > 0, "rfq needs at least one capability")
        rfq_id = len(self._mirror["requests"]) + 1
        entry = {
            "id": rfq_id,
            "buyer": ctx.sender,
            "capabilities": list(capabilities),
            "metadata": metadata,
            "open": True,
        }
        self._mirror["requests"].append(entry)
        head_slot = ctx.storage.array_data_slot(SLOT_REQUESTS, rfq_id - 1)
        ctx.storage.sstore(head_slot, rfq_id)
        self._store_struct_strings(
            ctx, ctx.storage.mapping_slot(SLOT_REQUESTS, f"caps:{rfq_id}"), capabilities
        )
        if metadata:
            ctx.storage.store_string(
                ctx.storage.mapping_slot(SLOT_REQUESTS, f"meta:{rfq_id}"), metadata
            )
        ctx.storage.sstore(SLOT_REQUEST_COUNT, rfq_id)
        ctx.emit("RequestCreated", rfq_id=rfq_id, buyer=ctx.sender)
        return rfq_id

    def check_valid_bid(self, ctx: CallContext, rfq_id: int, asset_id: int) -> bool:
        """``checkValidBid``: the O(n^2) capability validation.

        Every requested capability is compared against every asset
        capability via ``compare_strings`` — the nested loop the paper's
        latency analysis blames for BID's quadratic cost.
        """
        request = self._scan(ctx, "requests", SLOT_REQUESTS, rfq_id)
        asset = self._scan(ctx, "assets", SLOT_ASSETS, asset_id)
        ctx.require(request["open"], "request is closed")
        ctx.require(asset["owner"] == ctx.sender, "bidder does not own the asset")
        requested = self._load_capabilities(
            ctx, request, ctx.storage.mapping_slot(SLOT_REQUESTS, f"caps:{rfq_id}")
        )
        offered = self._load_capabilities(
            ctx, asset, ctx.storage.mapping_slot(SLOT_ASSETS, f"caps:{asset_id}")
        )
        for needed in requested:
            found = False
            for available in offered:
                if compare_strings(ctx, needed, available):
                    found = True
                    # NB: the reference contract keeps scanning — no break —
                    # which is exactly why its BID cost is worst-case O(n^2).
            if not found:
                return False
        return True

    def create_bid(self, ctx: CallContext, rfq_id: int, asset_id: int) -> int:
        """``createbid``: escrow a deposit and register an asset-backed bid."""
        ctx.require(ctx.value > 0, "bid requires an escrow deposit")
        ctx.require(self.check_valid_bid(ctx, rfq_id, asset_id), "insufficient capabilities")
        for bid in self._mirror["bids"]:
            ctx.storage.sload(ctx.storage.array_data_slot(SLOT_BIDS, bid["id"] - 1))
            ctx.require(
                not (bid["request_id"] == rfq_id and bid["supplier"] == ctx.sender
                     and not bid["refunded"] and not bid["accepted"]),
                "duplicate bid",
            )
        bid_id = len(self._mirror["bids"]) + 1
        entry = {
            "id": bid_id,
            "request_id": rfq_id,
            "supplier": ctx.sender,
            "asset_id": asset_id,
            "deposit": ctx.value,
            "refunded": False,
            "accepted": False,
        }
        self._mirror["bids"].append(entry)
        head_slot = ctx.storage.array_data_slot(SLOT_BIDS, bid_id - 1)
        ctx.storage.sstore(head_slot, bid_id)
        ctx.storage.sstore(ctx.storage.mapping_slot(SLOT_BIDS, f"deposit:{bid_id}"), ctx.value)
        ctx.storage.sstore(ctx.storage.mapping_slot(SLOT_BIDS, f"rfq:{bid_id}"), rfq_id)
        ctx.storage.sstore(SLOT_BID_COUNT, bid_id)
        ctx.emit("BidCreated", bid_id=bid_id, rfq_id=rfq_id, supplier=ctx.sender)
        return bid_id

    def accept_bid(self, ctx: CallContext, rfq_id: int, winning_bid_id: int) -> int:
        """``acceptBid``: settle the auction.

        Transfers the winning asset to the buyer and refunds every losing
        deposit — all coded by hand here, whereas SmartchainDB's nested
        ACCEPT_BID type does it natively.
        """
        request = self._scan(ctx, "requests", SLOT_REQUESTS, rfq_id)
        ctx.require(request["buyer"] == ctx.sender, "only the buyer may accept")
        ctx.require(request["open"], "request already settled")
        winner = None
        refunds = 0
        for index, bid in enumerate(self._mirror["bids"]):
            ctx.storage.sload(ctx.storage.array_data_slot(SLOT_BIDS, index))
            if bid["request_id"] != rfq_id or bid["refunded"] or bid["accepted"]:
                continue
            if bid["id"] == winning_bid_id:
                winner = bid
                continue
            # Refund losing deposit from contract escrow.
            ctx.send_value(self.state, self.address, bid["supplier"], bid["deposit"])
            ctx.storage.sstore(
                ctx.storage.mapping_slot(SLOT_BIDS, f"deposit:{bid['id']}"), 0
            )
            bid["refunded"] = True
            refunds += 1
        ctx.require(winner is not None, "winning bid not found for request")
        winner["accepted"] = True
        asset = self._scan(ctx, "assets", SLOT_ASSETS, winner["asset_id"])
        asset["owner"] = ctx.sender
        ctx.storage.sstore(
            ctx.storage.mapping_slot(SLOT_ASSETS, f"owner:{winner['asset_id']}"), 2
        )
        # Winning deposit goes to the buyer (payment semantics).
        ctx.send_value(self.state, self.address, ctx.sender, winner["deposit"])
        ctx.storage.sstore(
            ctx.storage.mapping_slot(SLOT_BIDS, f"deposit:{winner['id']}"), 0
        )
        request["open"] = False
        ctx.storage.sstore(ctx.storage.mapping_slot(SLOT_REQUESTS, f"open:{rfq_id}"), 0)
        ctx.emit("BidAccepted", rfq_id=rfq_id, bid_id=winning_bid_id, refunds=refunds)
        return refunds

    def withdraw_bid(self, ctx: CallContext, bid_id: int) -> None:
        """Supplier-initiated withdrawal (authorised parties only)."""
        bid = self._scan(ctx, "bids", SLOT_BIDS, bid_id)
        ctx.require(bid["supplier"] == ctx.sender, "only the bidder may withdraw")
        ctx.require(not bid["refunded"] and not bid["accepted"], "bid already settled")
        request = self._scan(ctx, "requests", SLOT_REQUESTS, bid["request_id"])
        ctx.require(request["open"], "auction already settled")
        ctx.send_value(self.state, self.address, bid["supplier"], bid["deposit"])
        ctx.storage.sstore(ctx.storage.mapping_slot(SLOT_BIDS, f"deposit:{bid_id}"), 0)
        bid["refunded"] = True
        ctx.emit("BidWithdrawn", bid_id=bid_id)

    def transfer_asset(self, ctx: CallContext, asset_id: int, to: str) -> None:
        """Contract-mediated asset TRANSFER (the Fig. 2 comparison)."""
        asset = self._scan(ctx, "assets", SLOT_ASSETS, asset_id)
        ctx.require(asset["owner"] == ctx.sender, "only the owner may transfer")
        asset["owner"] = to
        ctx.storage.sstore(
            ctx.storage.mapping_slot(SLOT_ASSETS, f"owner:{asset_id}"),
            1 + len(self._mirror["assets"]),
        )
        ctx.emit("AssetTransferred", asset_id=asset_id, to=to)

    # -- view helpers (free reads used by examples/tests) ---------------------------------

    def get_request(self, ctx: CallContext, rfq_id: int) -> dict[str, Any]:
        """View: request struct by id (still pays the O(n) scan)."""
        return dict(self._scan(ctx, "requests", SLOT_REQUESTS, rfq_id))

    def get_bid(self, ctx: CallContext, bid_id: int) -> dict[str, Any]:
        """View: bid struct by id."""
        return dict(self._scan(ctx, "bids", SLOT_BIDS, bid_id))

    def asset_owner(self, ctx: CallContext, asset_id: int) -> str:
        """View: current owner of an asset."""
        return self._scan(ctx, "assets", SLOT_ASSETS, asset_id)["owner"]


def estimate_gas(
    method: str,
    args: list[Any],
    counts: dict[str, int],
    value: int = 0,
) -> int:
    """Deterministic gas oracle for block packing and cost-model timing.

    Mirrors the contract's metered structure: linear scans over registry
    sizes, quadratic capability comparison, per-string storage writes.
    ``counts`` carries the current registry sizes
    (``assets``/``requests``/``bids``) and, for bids/accepts, the
    capability list lengths involved.
    """
    gas = G_TRANSACTION + calldata_gas(repr(args).encode())
    scan = lambda n: 2_200 * max(n, 0)  # cold sload + arithmetic per element

    if method == "create_asset":
        capabilities, metadata = args[0], (args[1] if len(args) > 1 else "")
        gas += 45_000
        for capability in capabilities:
            gas += 21_000 + 22_000 * words(len(capability.encode()))
        gas += 21_000 * words(len(metadata.encode())) if metadata else 0
    elif method == "create_rfq":
        capabilities, metadata = args[0], (args[1] if len(args) > 1 else "")
        gas += 45_000
        for capability in capabilities:
            gas += 21_000 + 22_000 * words(len(capability.encode()))
        gas += 21_000 * words(len(metadata.encode())) if metadata else 0
    elif method == "create_bid":
        gas += 70_000
        gas += scan(counts.get("requests", 0)) + scan(counts.get("assets", 0))
        gas += scan(counts.get("bids", 0))
        requested = counts.get("requested_caps", 4)
        offered = counts.get("offered_caps", 4)
        cap_bytes = counts.get("cap_bytes", 24)
        gas += requested * offered * 2 * keccak_gas(cap_bytes)
        gas += (requested + offered) * 2_200 * max(1, words(cap_bytes))
    elif method == "accept_bid":
        gas += 60_000
        gas += scan(counts.get("requests", 0)) + scan(counts.get("assets", 0))
        gas += scan(counts.get("bids", 0))
        gas += counts.get("bids_for_rfq", 1) * 17_000  # refund + sstore each
    elif method == "transfer_asset":
        gas += 30_000 + scan(counts.get("assets", 0))
    elif method == "withdraw_bid":
        gas += 40_000 + scan(counts.get("bids", 0)) + scan(counts.get("requests", 0))
    else:
        gas += 50_000
    return gas
