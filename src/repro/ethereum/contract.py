"""Smart-contract runtime: deployment, dispatch, gas metering, revert.

This is not a bytecode EVM; it is a *semantic* EVM: contracts are Python
classes whose every storage touch, hash and value transfer is charged
through the real gas schedule against keccak-placed storage slots.  What
the evaluation depends on — gas totals, revert semantics, sequential
stateful execution, the cost asymmetries between native and contract
transfers — is reproduced mechanically rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import OutOfGasError, RevertError
from repro.crypto.hashing import sha3_256_hex
from repro.ethereum.evmstate import StorageView, WorldState
from repro.ethereum.gas import (
    DEFAULT_TX_GAS_LIMIT,
    G_CALL_VALUE,
    G_LOG_BASE,
    G_LOG_DATA_BYTE,
    G_LOG_TOPIC,
    G_TRANSACTION,
    GasMeter,
    calldata_gas,
)


@dataclass
class ExecutionResult:
    """Outcome of one transaction execution."""

    success: bool
    gas_used: int
    return_value: Any = None
    error: str | None = None
    logs: list[dict[str, Any]] = field(default_factory=list)


class Contract:
    """Base class for deployed contracts.

    Subclasses implement methods taking ``(ctx, *args)`` where ``ctx`` is
    the :class:`CallContext` carrying sender, value, the gas meter and the
    metered storage view.
    """

    def __init__(self, address: str, state: WorldState):
        self.address = address
        self.state = state

    def dispatch(self, ctx: "CallContext", method: str, args: list[Any]) -> Any:
        """Route a call to the named public method.

        Raises:
            RevertError: if the method does not exist (bad selector).
        """
        handler = getattr(self, method, None)
        if handler is None or method.startswith("_"):
            raise RevertError(f"unknown method {method!r}")
        return handler(ctx, *args)


@dataclass
class CallContext:
    """Execution context passed to contract methods."""

    sender: str
    value: int
    meter: GasMeter
    storage: StorageView
    logs: list[dict[str, Any]] = field(default_factory=list)

    def require(self, condition: bool, reason: str = "") -> None:
        """Solidity ``require``: revert when the condition fails."""
        if not condition:
            raise RevertError(reason)

    def emit(self, event: str, **fields: Any) -> None:
        """Solidity event emission, charged per LOG pricing."""
        data_bytes = sum(len(str(value)) for value in fields.values())
        self.meter.charge(G_LOG_BASE + G_LOG_TOPIC + G_LOG_DATA_BYTE * data_bytes)
        self.logs.append({"event": event, **fields})

    def send_value(self, state: WorldState, from_address: str, to_address: str, amount: int) -> None:
        """In-contract value transfer (refunds, escrow release)."""
        if amount <= 0:
            return
        self.meter.charge(G_CALL_VALUE)
        state.debit(from_address, amount)
        state.credit(to_address, amount)


class EvmRuntime:
    """One node's replicated contract state machine."""

    def __init__(self) -> None:
        self.state = WorldState()
        self.contracts: dict[str, Contract] = {}
        self._deploy_nonce = 0
        self.receipts: list[ExecutionResult] = []

    # -- deployment -------------------------------------------------------------

    def deploy(
        self,
        contract_class: type[Contract],
        deployer: str,
        args: list[Any] | None = None,
        gas_limit: int = DEFAULT_TX_GAS_LIMIT,
    ) -> tuple[str, ExecutionResult]:
        """Deploy a contract; returns (address, result).

        Deployment charges intrinsic gas plus the constructor's metered
        work (Solidity deployment is expensive — part of the usability
        cost Fig. 2 alludes to).
        """
        self._deploy_nonce += 1
        address = "0x" + sha3_256_hex(f"{deployer}:{self._deploy_nonce}".encode())[:40]
        meter = GasMeter(limit=gas_limit)
        meter.charge(G_TRANSACTION + 32_000)  # create intrinsic
        contract = contract_class(address, self.state)
        ctx = CallContext(
            sender=deployer,
            value=0,
            meter=meter,
            storage=StorageView(self.state, address, meter),
        )
        constructor = getattr(contract, "constructor", None)
        error = None
        success = True
        try:
            if constructor is not None:
                constructor(ctx, *(args or []))
        except (RevertError, OutOfGasError) as exc:
            success = False
            error = str(exc)
        if success:
            self.contracts[address] = contract
        result = ExecutionResult(success, meter.effective, return_value=address, error=error)
        self.receipts.append(result)
        return address, result

    # -- execution ---------------------------------------------------------------

    def execute_call(
        self,
        contract_address: str,
        method: str,
        args: list[Any],
        sender: str,
        value: int = 0,
        gas_limit: int = DEFAULT_TX_GAS_LIMIT,
        calldata_bytes: bytes | None = None,
    ) -> ExecutionResult:
        """Execute a contract-method transaction.

        Failed executions (revert / out-of-gas) still consume gas, as on
        chain; state changes of failed calls are *not* applied — calls run
        against a journal that only merges on success.
        """
        meter = GasMeter(limit=gas_limit)
        data = calldata_bytes if calldata_bytes is not None else repr(args).encode()
        meter.charge(G_TRANSACTION)
        meter.charge(calldata_gas(data))
        contract = self.contracts.get(contract_address)
        if contract is None:
            result = ExecutionResult(False, meter.effective, error="no contract at address")
            self.receipts.append(result)
            return result

        snapshot = self._snapshot(contract_address, sender)
        ctx = CallContext(
            sender=sender,
            value=value,
            meter=meter,
            storage=StorageView(self.state, contract_address, meter),
        )
        try:
            if value > 0:
                self.state.debit(sender, value)
                self.state.credit(contract_address, value)
            return_value = contract.dispatch(ctx, method, list(args))
            result = ExecutionResult(True, meter.effective, return_value, logs=ctx.logs)
        except (RevertError, OutOfGasError) as exc:
            self._restore(snapshot)
            result = ExecutionResult(False, meter.used, error=str(exc))
        self.receipts.append(result)
        return result

    def native_transfer(self, sender: str, recipient: str, amount: int) -> ExecutionResult:
        """The native TRANSFER primitive: fixed 21 000 gas."""
        meter = GasMeter()
        meter.charge(G_TRANSACTION)
        try:
            self.state.debit(sender, amount)
            self.state.credit(recipient, amount)
            result = ExecutionResult(True, meter.effective)
        except RevertError as exc:
            result = ExecutionResult(False, meter.effective, error=str(exc))
        self.receipts.append(result)
        return result

    # -- snapshots (revert support) --------------------------------------------------

    def _snapshot(self, contract_address: str, sender: str) -> dict[str, Any]:
        import copy

        contract = self.contracts.get(contract_address)
        return {
            "storage": dict(self.state.account(contract_address).storage),
            "balances": {
                address: self.state.account(address).balance
                for address in (contract_address, sender)
            },
            "mirror": copy.deepcopy(getattr(contract, "_mirror", None)),
            "address": contract_address,
        }

    def _restore(self, snapshot: dict[str, Any]) -> None:
        address = snapshot["address"]
        self.state.account(address).storage = snapshot["storage"]
        for account_address, balance in snapshot["balances"].items():
            self.state.account(account_address).balance = balance
        contract = self.contracts.get(address)
        if contract is not None and snapshot["mirror"] is not None:
            contract._mirror = snapshot["mirror"]  # type: ignore[attr-defined]
