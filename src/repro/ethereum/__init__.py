"""ETH-SC baseline: gas-metered contract runtime on a Quorum-style chain."""

from repro.ethereum.auction import ReverseAuctionMarketplace, compare_strings, estimate_gas
from repro.ethereum.chain import (
    EthApplication,
    EthTxRecord,
    QuorumChain,
    QuorumChainConfig,
)
from repro.ethereum.client import Web3Client
from repro.ethereum.contract import CallContext, Contract, EvmRuntime, ExecutionResult
from repro.ethereum.evmstate import Account, StorageView, WorldState
from repro.ethereum.gas import (
    DEFAULT_TX_GAS_LIMIT,
    G_TRANSACTION,
    GAS_PER_SECOND,
    GasMeter,
    calldata_gas,
    execution_seconds,
    keccak_gas,
)
from repro.ethereum.solidity_source import (
    REVERSE_AUCTION_SOLIDITY,
    SMARTCHAINDB_USER_LOC,
    count_code_lines,
)

__all__ = [
    "Account",
    "CallContext",
    "Contract",
    "DEFAULT_TX_GAS_LIMIT",
    "EthApplication",
    "EthTxRecord",
    "EvmRuntime",
    "ExecutionResult",
    "G_TRANSACTION",
    "GAS_PER_SECOND",
    "GasMeter",
    "QuorumChain",
    "QuorumChainConfig",
    "REVERSE_AUCTION_SOLIDITY",
    "ReverseAuctionMarketplace",
    "SMARTCHAINDB_USER_LOC",
    "StorageView",
    "Web3Client",
    "WorldState",
    "calldata_gas",
    "compare_strings",
    "count_code_lines",
    "estimate_gas",
    "execution_seconds",
    "keccak_gas",
]
