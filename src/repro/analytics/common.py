"""Shared read-path plumbing for the analytics package.

Two things live here, both extracted from near-identical inline code in
``queries.py`` and ``fraud.py``:

1. **Schema-tolerant payload accessors.**  Every detector used to reach
   into payloads with chains like
   ``(tx.get("inputs") or [{}])[0].get("owners_before", [None])[0]`` —
   which *looks* defensive but raises ``IndexError`` the moment a
   malformed payload carries an empty ``owners_before`` list, silently
   masking schema drift until an analyst run crashes.
   :func:`tx_requester` / :func:`tx_recipient` are the one tested,
   shared implementation: they return ``None`` on every malformed shape.

2. **The read-source abstraction.**  Analytics queries are phrased
   against a :class:`ReadSource` — either a :class:`ScanSource` over the
   transactions collection (the original per-call rescan) or a
   :class:`ViewSource` over the WAL-fed materialized views
   (:mod:`repro.views`).  Crucially, the spend-graph walk matches
   spenders on the exact ``(transaction_id, output_index)`` pair — the
   same rule validation applies in
   :meth:`repro.core.context.ValidationContext.output_spender` — instead
   of ``inputs.fulfills.transaction_id`` alone, which followed an
   arbitrary branch on multi-output transactions.
"""

from __future__ import annotations

from typing import Any


def tx_requester(payload: dict[str, Any] | None) -> str | None:
    """First signer (``owners_before``) of a payload's first input.

    Safe on every malformed shape: missing/empty ``inputs``, inputs that
    are not dicts, missing/empty ``owners_before``.  Returns ``None``
    rather than guessing.
    """
    if not isinstance(payload, dict):
        return None
    inputs = payload.get("inputs")
    if not isinstance(inputs, list) or not inputs:
        return None
    first = inputs[0]
    if not isinstance(first, dict):
        return None
    owners = first.get("owners_before")
    if not isinstance(owners, list) or not owners:
        return None
    return owners[0]


def tx_recipient(payload: dict[str, Any] | None, output_index: int = 0) -> str | None:
    """First public key of the output at ``output_index``.

    Same tolerance contract as :func:`tx_requester`: any malformed or
    absent shape yields ``None``.
    """
    if not isinstance(payload, dict):
        return None
    outputs = payload.get("outputs")
    if not isinstance(outputs, list) or not (0 <= output_index < len(outputs)):
        return None
    output = outputs[output_index]
    if not isinstance(output, dict):
        return None
    keys = output.get("public_keys")
    if not isinstance(keys, list) or not keys:
        return None
    return keys[0]


class ScanSource:
    """Read source that rescans the transactions collection per call."""

    def __init__(self, transactions):
        self._transactions = transactions

    def by_id(self, tx_id: str) -> dict[str, Any] | None:
        return self._transactions.find_one({"id": tx_id}, copy=False)

    def by_operation(self, operation: str) -> list[dict[str, Any]]:
        return self._transactions.find({"operation": operation}, copy=False)

    def count(self, operation: str) -> int:
        return self._transactions.count({"operation": operation})

    def referencing(self, operation: str, reference: str) -> list[dict[str, Any]]:
        return self._transactions.find(
            {"operation": operation, "references": reference}, copy=False
        )

    def spender_of(self, tx_id: str, output_index: int) -> dict[str, Any] | None:
        # Exact-pair match, mirroring ValidationContext.output_spender:
        # the top-level transaction_id clause rides the index, the
        # $elemMatch pins the output_index to the same input element.
        return self._transactions.find_one(
            {
                "inputs.fulfills.transaction_id": tx_id,
                "inputs": {
                    "$elemMatch": {
                        "fulfills.transaction_id": tx_id,
                        "fulfills.output_index": output_index,
                    }
                },
            },
            copy=False,
        )


class ViewSource:
    """Read source backed by a :class:`repro.views.ViewManager`."""

    def __init__(self, views):
        self._views = views

    def by_id(self, tx_id: str) -> dict[str, Any] | None:
        return self._views.transaction(tx_id)

    def by_operation(self, operation: str) -> list[dict[str, Any]]:
        return self._views.transactions_by_operation(operation)

    def count(self, operation: str) -> int:
        return self._views.operation_count(operation)

    def referencing(self, operation: str, reference: str) -> list[dict[str, Any]]:
        return self._views.referencing(operation, reference)

    def spender_of(self, tx_id: str, output_index: int) -> dict[str, Any] | None:
        return self._views.spender_of(tx_id, output_index)


def follow_spend(source, payload: dict[str, Any], operation: str | None = None):
    """The next hop of a custody walk: ``(spender, output_index)``.

    Probes the payload's outputs in index order and follows the lowest
    index that has a committed spender (optionally restricted to one
    spender ``operation``).  Returns ``(None, None)`` at the chain tip.
    """
    outputs = payload.get("outputs") or []
    for index in range(len(outputs)):
        spender = source.spender_of(payload["id"], index)
        if spender is None:
            continue
        if operation is not None and spender.get("operation") != operation:
            continue
        return spender, index
    return None, None


def custody_walk(
    source,
    start: dict[str, Any],
    operation: str | None = None,
    max_hops: int | None = None,
):
    """Walk the spend graph from ``start`` along exact output refs.

    Returns ``[(payload, followed_index), ...]`` in custody order, where
    ``followed_index`` is the output index the walk left through
    (``None`` at the terminal hop).  A seen-set guards against cycles in
    corrupt histories.
    """
    steps: list[tuple[dict[str, Any], int | None]] = []
    seen: set[str] = set()
    current: dict[str, Any] | None = start
    while current is not None and current.get("id") not in seen:
        seen.add(current["id"])
        if max_hops is not None and len(steps) > max_hops:
            break
        spender, index = follow_spend(source, current, operation)
        steps.append((current, index))
        current = spender
    return steps
