"""Fraud heuristics over the transaction graph.

The paper motivates on-chain queryability with "tasks like fraud
analysis" (Section 2.1).  These detectors run as plain queries over the
committed collections — no event scraping, no contract instrumentation.

Each detector returns :class:`Finding` records; none of them mutates
state.  They are heuristics: a finding is a lead for an analyst, not a
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.server import SmartchainServer


@dataclass(frozen=True)
class Finding:
    """One suspicious pattern."""

    kind: str
    subject: str
    detail: str
    transactions: tuple[str, ...] = ()


class FraudAnalyzer:
    """Query-driven fraud screening for the marketplace."""

    def __init__(self, server: SmartchainServer):
        self._server = server
        self._transactions = server.database.collection("transactions")

    def self_dealing(self) -> list[Finding]:
        """Requesters accepting bids backed by assets they once owned.

        A buyer who routes their own asset through a shill supplier and
        then "wins" it back distorts price discovery.
        """
        findings = []
        for accept in self._transactions.find({"operation": "ACCEPT_BID"}, copy=False):
            metadata = accept.get("metadata") or {}
            win_bid = self._transactions.find_one({"id": metadata.get("win_bid_id", "")}, copy=False)
            if win_bid is None:
                continue
            requester = (accept.get("inputs") or [{}])[0].get("owners_before", [None])[0]
            asset_id = (win_bid.get("asset") or {}).get("id")
            if not asset_id or requester is None:
                continue
            create = self._transactions.find_one({"id": asset_id}, copy=False)
            if create is None:
                continue
            minter = (create.get("inputs") or [{}])[0].get("owners_before", [None])[0]
            if minter == requester:
                findings.append(
                    Finding(
                        kind="self-dealing",
                        subject=requester or "?",
                        detail="requester accepted a bid backed by an asset they minted",
                        transactions=(accept["id"], win_bid["id"], asset_id),
                    )
                )
        return findings

    def bid_withdraw_churn(self, threshold: int = 3) -> list[Finding]:
        """Suppliers whose bids repeatedly end in RETURNs without a win.

        Persistent losing bids at scale can be deliberate price probing
        or denial-of-auction behaviour.
        """
        losses: dict[str, list[str]] = {}
        wins: set[str] = set()
        for accept in self._transactions.find({"operation": "ACCEPT_BID"}, copy=False):
            metadata = accept.get("metadata") or {}
            win_bid = self._transactions.find_one({"id": metadata.get("win_bid_id", "")}, copy=False)
            if win_bid is not None:
                winner = (win_bid.get("inputs") or [{}])[0].get("owners_before", [None])[0]
                if winner:
                    wins.add(winner)
        for returned in self._transactions.find({"operation": "RETURN"}, copy=False):
            recipient = (returned.get("outputs") or [{}])[0].get("public_keys", [None])[0]
            if recipient:
                losses.setdefault(recipient, []).append(returned["id"])
        findings = []
        for supplier, return_ids in losses.items():
            if len(return_ids) >= threshold and supplier not in wins:
                findings.append(
                    Finding(
                        kind="bid-churn",
                        subject=supplier,
                        detail=f"{len(return_ids)} losing bids and no wins",
                        transactions=tuple(return_ids),
                    )
                )
        return findings

    def rapid_flips(self, max_hops: int = 3) -> list[Finding]:
        """Assets cycling back to a previous owner within few transfers.

        Ownership loops (A -> B -> A) are classic wash-trading structure.
        """
        findings = []
        for create in self._transactions.find({"operation": "CREATE"}, copy=False):
            chain: list[str] = []
            current = create
            for _ in range(max_hops + 1):
                outputs = current.get("outputs") or []
                holder = outputs[0].get("public_keys", [None])[0] if outputs else None
                if holder:
                    chain.append(holder)
                spender = self._transactions.find_one(
                    {"inputs.fulfills.transaction_id": current["id"],
                     "operation": "TRANSFER"},
                    copy=False,
                )
                if spender is None:
                    break
                current = spender
            seen: dict[str, int] = {}
            for position, holder in enumerate(chain):
                if holder in seen and position - seen[holder] <= max_hops and position > seen[holder]:
                    findings.append(
                        Finding(
                            kind="ownership-loop",
                            subject=holder,
                            detail=f"asset returned to a prior owner within "
                                   f"{position - seen[holder]} hop(s)",
                            transactions=(create["id"],),
                        )
                    )
                    break
                seen[holder] = position
        return findings

    def capability_overclaim(self) -> list[Finding]:
        """Assets whose capability list far exceeds the market norm.

        Outlier capability counts are a signal of padded certifications
        (gaming CBID.7 subset checks).
        """
        counts = []
        assets = self._transactions.find({"operation": "CREATE"}, copy=False)
        for create in assets:
            data = (create.get("asset") or {}).get("data") or {}
            capabilities = data.get("capabilities") or []
            counts.append((create["id"], len(capabilities)))
        if len(counts) < 4:
            return []
        sizes = sorted(size for _, size in counts)
        median = sizes[len(sizes) // 2]
        findings = []
        for tx_id, size in counts:
            if median > 0 and size >= max(4, 3 * median):
                findings.append(
                    Finding(
                        kind="capability-overclaim",
                        subject=tx_id,
                        detail=f"declares {size} capabilities vs market median {median}",
                        transactions=(tx_id,),
                    )
                )
        return findings

    def screen(self) -> list[Finding]:
        """Run every detector."""
        findings: list[Finding] = []
        findings.extend(self.self_dealing())
        findings.extend(self.bid_withdraw_churn())
        findings.extend(self.rapid_flips())
        findings.extend(self.capability_overclaim())
        return findings
