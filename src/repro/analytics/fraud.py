"""Fraud heuristics over the transaction graph.

The paper motivates on-chain queryability with "tasks like fraud
analysis" (Section 2.1).  These detectors run as plain queries over the
committed collections — no event scraping, no contract instrumentation.

Each detector returns :class:`Finding` records; none of them mutates
state.  They are heuristics: a finding is a lead for an analyst, not a
verdict.

Two correctness rules shared with :mod:`repro.analytics.queries`:

- Party extraction goes through :func:`repro.analytics.common.tx_requester`
  and :func:`~repro.analytics.common.tx_recipient`, which return ``None``
  on malformed transactions (empty inputs, missing owner lists) instead
  of raising — a hostile payload must not crash the screen.
- Custody chains (``rapid_flips``) follow the exact
  ``(transaction_id, output_index)`` spend pair, so a change output
  going back to the seller is not mistaken for a flip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.common import (
    ScanSource,
    ViewSource,
    custody_walk,
    tx_recipient,
    tx_requester,
)
from repro.core.server import SmartchainServer


@dataclass(frozen=True)
class Finding:
    """One suspicious pattern."""

    kind: str
    subject: str
    detail: str
    transactions: tuple[str, ...] = ()


class FraudAnalyzer:
    """Query-driven fraud screening for the marketplace."""

    def __init__(self, server: SmartchainServer, source: str = "auto"):
        if source not in ("auto", "views", "scan"):
            raise ValueError(f"unknown analytics source {source!r}")
        self._server = server
        self._transactions = server.database.collection("transactions")
        self._mode = source

    def _source(self):
        if self._mode != "scan":
            views = getattr(self._server, "views", None)
            if views is not None and (
                self._mode == "views" or self._server.views_current()
            ):
                return ViewSource(views)
        return ScanSource(self._transactions)

    def self_dealing(self) -> list[Finding]:
        """Requesters accepting bids backed by assets they once owned.

        A buyer who routes their own asset through a shill supplier and
        then "wins" it back distorts price discovery.
        """
        source = self._source()
        findings = []
        for accept in source.by_operation("ACCEPT_BID"):
            metadata = accept.get("metadata") or {}
            win_bid = source.by_id(metadata.get("win_bid_id", ""))
            if win_bid is None:
                continue
            requester = tx_requester(accept)
            asset_id = (win_bid.get("asset") or {}).get("id")
            if not asset_id or requester is None:
                continue
            create = source.by_id(asset_id)
            if create is None:
                continue
            if tx_requester(create) == requester:
                findings.append(
                    Finding(
                        kind="self-dealing",
                        subject=requester,
                        detail="requester accepted a bid backed by an asset they minted",
                        transactions=(accept["id"], win_bid["id"], asset_id),
                    )
                )
        return findings

    def bid_withdraw_churn(self, threshold: int = 3) -> list[Finding]:
        """Suppliers whose bids repeatedly end in RETURNs without a win.

        Persistent losing bids at scale can be deliberate price probing
        or denial-of-auction behaviour.
        """
        source = self._source()
        losses: dict[str, list[str]] = {}
        wins: set[str] = set()
        for accept in source.by_operation("ACCEPT_BID"):
            metadata = accept.get("metadata") or {}
            win_bid = source.by_id(metadata.get("win_bid_id", ""))
            if win_bid is not None:
                winner = tx_requester(win_bid)
                if winner:
                    wins.add(winner)
        for returned in source.by_operation("RETURN"):
            recipient = tx_recipient(returned)
            if recipient:
                losses.setdefault(recipient, []).append(returned["id"])
        findings = []
        for supplier, return_ids in losses.items():
            if len(return_ids) >= threshold and supplier not in wins:
                findings.append(
                    Finding(
                        kind="bid-churn",
                        subject=supplier,
                        detail=f"{len(return_ids)} losing bids and no wins",
                        transactions=tuple(return_ids),
                    )
                )
        return findings

    def rapid_flips(self, max_hops: int = 3) -> list[Finding]:
        """Assets cycling back to a previous owner within few transfers.

        Ownership loops (A -> B -> A) are classic wash-trading structure.
        The walk follows the exact output each TRANSFER spends, and the
        holder at each hop is the owner of that followed output — change
        outputs returning to the sender never register as a flip.
        """
        source = self._source()
        findings = []
        for create in source.by_operation("CREATE"):
            chain: list[str] = []
            walk = custody_walk(
                source, create, operation="TRANSFER", max_hops=max_hops
            )
            for payload, followed in walk:
                holder = tx_recipient(
                    payload, followed if followed is not None else 0
                )
                if holder:
                    chain.append(holder)
            seen: dict[str, int] = {}
            for position, holder in enumerate(chain):
                if holder in seen and position - seen[holder] <= max_hops and position > seen[holder]:
                    findings.append(
                        Finding(
                            kind="ownership-loop",
                            subject=holder,
                            detail=f"asset returned to a prior owner within "
                                   f"{position - seen[holder]} hop(s)",
                            transactions=(create["id"],),
                        )
                    )
                    break
                seen[holder] = position
        return findings

    def capability_overclaim(self) -> list[Finding]:
        """Assets whose capability list far exceeds the market norm.

        Outlier capability counts are a signal of padded certifications
        (gaming CBID.7 subset checks).
        """
        source = self._source()
        counts = []
        for create in source.by_operation("CREATE"):
            data = (create.get("asset") or {}).get("data") or {}
            capabilities = data.get("capabilities") or []
            counts.append((create["id"], len(capabilities)))
        if len(counts) < 4:
            return []
        sizes = sorted(size for _, size in counts)
        median = sizes[len(sizes) // 2]
        findings = []
        for tx_id, size in counts:
            if median > 0 and size >= max(4, 3 * median):
                findings.append(
                    Finding(
                        kind="capability-overclaim",
                        subject=tx_id,
                        detail=f"declares {size} capabilities vs market median {median}",
                        transactions=(tx_id,),
                    )
                )
        return findings

    def screen(self) -> list[Finding]:
        """Run every detector."""
        findings: list[Finding] = []
        findings.extend(self.self_dealing())
        findings.extend(self.bid_withdraw_churn())
        findings.extend(self.rapid_flips())
        findings.extend(self.capability_overclaim())
        return findings
