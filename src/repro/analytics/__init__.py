"""Marketplace analytics and fraud screening over committed state."""

from repro.analytics.common import (
    ScanSource,
    ViewSource,
    custody_walk,
    tx_recipient,
    tx_requester,
)
from repro.analytics.fraud import Finding, FraudAnalyzer
from repro.analytics.queries import (
    MarketplaceAnalytics,
    ProvenanceStep,
    RequestSummary,
)

__all__ = [
    "Finding",
    "FraudAnalyzer",
    "MarketplaceAnalytics",
    "ProvenanceStep",
    "RequestSummary",
    "ScanSource",
    "ViewSource",
    "custody_walk",
    "tx_recipient",
    "tx_requester",
]
