"""Marketplace analytics over the replicated document store.

Section 2.1's queryability argument: with smart contracts, "metadata for
requests, bids, and their underlying assets" hide inside program
structures, so "a query like finding open service requests for 3-D
printing manufacturing capabilities ... cannot be supported easily.
Even more complex queries are critical for supporting tasks like fraud
analysis or other business decision-making tasks."

With the declarative model all of that is plain data in indexed
collections.  This module answers those queries directly against a
node's :class:`~repro.core.server.SmartchainServer` state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.asset import extract_capabilities
from repro.core.server import SmartchainServer


@dataclass
class RequestSummary:
    """One RFQ's market activity."""

    request_id: str
    requester: str
    capabilities: list[str]
    bid_count: int
    interest_count: int
    settled: bool
    winning_bid: str | None


@dataclass
class ProvenanceStep:
    """One hop in an asset's ownership history."""

    transaction_id: str
    operation: str
    holders: list[str]


class MarketplaceAnalytics:
    """Business/decision-support queries over committed state."""

    def __init__(self, server: SmartchainServer):
        self._server = server
        self._transactions = server.database.collection("transactions")

    # -- discovery --------------------------------------------------------------

    def open_requests(self, capability: str | None = None) -> list[dict[str, Any]]:
        """Open RFQs, optionally filtered by requested capability."""
        return self._server.open_requests(capability)

    def request_summary(self, request_id: str) -> RequestSummary:
        """Full activity picture for one RFQ."""
        request = self._transactions.find_one({"id": request_id}, copy=False) or {}
        bids = self._transactions.find({"operation": "BID", "references": request_id}, copy=False)
        interests = self._transactions.find(
            {"operation": "INTEREST", "references": request_id}, copy=False
        )
        accept = self._transactions.find_one(
            {"operation": "ACCEPT_BID", "references": request_id}, copy=False
        )
        winning = None
        if accept is not None:
            winning = (accept.get("metadata") or {}).get("win_bid_id")
        requester = ""
        inputs = request.get("inputs") or []
        if inputs and inputs[0].get("owners_before"):
            requester = inputs[0]["owners_before"][0]
        return RequestSummary(
            request_id=request_id,
            requester=requester,
            capabilities=extract_capabilities(request.get("asset")),
            bid_count=len(bids),
            interest_count=len(interests),
            settled=accept is not None,
            winning_bid=winning,
        )

    def capability_demand(self) -> dict[str, int]:
        """How often each capability is requested across all RFQs."""
        demand: dict[str, int] = {}
        for request in self._transactions.find({"operation": "REQUEST"}, copy=False):
            for capability in extract_capabilities(request.get("asset")):
                demand[capability] = demand.get(capability, 0) + 1
        return demand

    # -- provenance ----------------------------------------------------------------

    def provenance(self, asset_id: str) -> list[ProvenanceStep]:
        """The ordered chain of custody for an asset lineage.

        Walks the spend graph from the minting transaction, following
        whichever committed transaction spends the current tip.
        """
        steps: list[ProvenanceStep] = []
        current = self._transactions.find_one({"id": asset_id}, copy=False)
        while current is not None:
            outputs = current.get("outputs") or []
            # Zero-copy scan: the holders list must not alias stored state.
            holders = list(outputs[0].get("public_keys", [])) if outputs else []
            steps.append(
                ProvenanceStep(
                    transaction_id=current["id"],
                    operation=current.get("operation", "?"),
                    holders=holders,
                )
            )
            spender = self._transactions.find_one(
                {"inputs.fulfills.transaction_id": current["id"]}, copy=False
            )
            if spender is None or spender["id"] == current["id"]:
                break
            current = spender
        return steps

    def holdings(self, public_key: str) -> list[dict[str, Any]]:
        """Unspent outputs (wallet view) for an account."""
        return self._server.outputs_for(public_key)

    # -- market structure -------------------------------------------------------------

    def bid_competition(self) -> dict[str, int]:
        """request_id -> number of bids (market concentration input)."""
        competition: dict[str, int] = {}
        for bid in self._transactions.find({"operation": "BID"}, copy=False):
            for reference in bid.get("references", []):
                competition[reference] = competition.get(reference, 0) + 1
        return competition

    def settlement_rate(self) -> float:
        """Fraction of RFQs that reached an ACCEPT_BID."""
        requests = self._transactions.count({"operation": "REQUEST"})
        if requests == 0:
            return 0.0
        accepts = self._transactions.count({"operation": "ACCEPT_BID"})
        return accepts / requests

    def operation_volume(self) -> dict[str, int]:
        """Committed transaction count per operation."""
        volume: dict[str, int] = {}
        for operation in ("CREATE", "TRANSFER", "REQUEST", "BID", "ACCEPT_BID",
                          "RETURN", "INTEREST", "PRE_REQUEST"):
            count = self._transactions.count({"operation": operation})
            if count:
                volume[operation] = count
        return volume
