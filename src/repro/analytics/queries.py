"""Marketplace analytics over the replicated document store.

Section 2.1's queryability argument: with smart contracts, "metadata for
requests, bids, and their underlying assets" hide inside program
structures, so "a query like finding open service requests for 3-D
printing manufacturing capabilities ... cannot be supported easily.
Even more complex queries are critical for supporting tasks like fraud
analysis or other business decision-making tasks."

With the declarative model all of that is plain data in indexed
collections.  This module answers those queries against a node's
:class:`~repro.core.server.SmartchainServer` state — from the WAL-fed
materialized views (:mod:`repro.views`) when the node has them and they
are current, falling back to collection scans otherwise.  The
``source`` argument forces one path (``"views"`` / ``"scan"``), which is
how the golden parity suite asserts both answer identically.

Custody walks (``provenance``) follow the **exact**
``(transaction_id, output_index)`` spend reference — the same rule
validation applies — via :func:`repro.analytics.common.custody_walk`.
The old walk matched on ``transaction_id`` alone and followed an
arbitrary branch through multi-output transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analytics.common import (
    ScanSource,
    ViewSource,
    custody_walk,
    tx_requester,
)
from repro.core.asset import extract_capabilities
from repro.core.server import SmartchainServer


@dataclass
class RequestSummary:
    """One RFQ's market activity."""

    request_id: str
    requester: str
    capabilities: list[str]
    bid_count: int
    interest_count: int
    settled: bool
    winning_bid: str | None


@dataclass
class ProvenanceStep:
    """One hop in an asset's ownership history.

    ``holders`` are the owners of the output the custody chain left this
    transaction through (the followed branch), or of output 0 at the
    terminal hop.
    """

    transaction_id: str
    operation: str
    holders: list[str]


class MarketplaceAnalytics:
    """Business/decision-support queries over committed state."""

    def __init__(self, server: SmartchainServer, source: str = "auto"):
        if source not in ("auto", "views", "scan"):
            raise ValueError(f"unknown analytics source {source!r}")
        self._server = server
        self._transactions = server.database.collection("transactions")
        self._mode = source

    def _active_views(self):
        """The ViewManager, when this query run may serve from views."""
        if self._mode == "scan":
            return None
        views = getattr(self._server, "views", None)
        if views is None:
            return None
        if self._mode == "views" or self._server.views_current():
            return views
        return None

    def _source(self):
        views = self._active_views()
        if views is not None:
            return ViewSource(views)
        return ScanSource(self._transactions)

    # -- discovery --------------------------------------------------------------

    def open_requests(self, capability: str | None = None) -> list[dict[str, Any]]:
        """Open RFQs, optionally filtered by requested capability."""
        return self._server.open_requests(capability, source=self._mode)

    def request_summary(self, request_id: str) -> RequestSummary:
        """Full activity picture for one RFQ."""
        source = self._source()
        request = source.by_id(request_id) or {}
        bids = source.referencing("BID", request_id)
        interests = source.referencing("INTEREST", request_id)
        accepts = source.referencing("ACCEPT_BID", request_id)
        accept = accepts[0] if accepts else None
        winning = None
        if accept is not None:
            winning = (accept.get("metadata") or {}).get("win_bid_id")
        return RequestSummary(
            request_id=request_id,
            requester=tx_requester(request) or "",
            capabilities=extract_capabilities(request.get("asset")),
            bid_count=len(bids),
            interest_count=len(interests),
            settled=accept is not None,
            winning_bid=winning,
        )

    def capability_demand(self) -> dict[str, int]:
        """How often each capability is requested across all RFQs."""
        views = self._active_views()
        if views is not None:
            return views.capability_demand()
        demand: dict[str, int] = {}
        for request in self._transactions.find({"operation": "REQUEST"}, copy=False):
            for capability in extract_capabilities(request.get("asset")):
                demand[capability] = demand.get(capability, 0) + 1
        return demand

    # -- provenance ----------------------------------------------------------------

    def provenance(self, asset_id: str) -> list[ProvenanceStep]:
        """The ordered chain of custody for an asset lineage.

        Walks the spend graph from the minting transaction, at each hop
        following the lowest-index output with a committed spender —
        matched on the exact ``(transaction_id, output_index)`` pair, so
        multi-output transactions (payment + change) never divert the
        chain down the wrong branch.
        """
        source = self._source()
        start = source.by_id(asset_id)
        if start is None:
            return []
        steps: list[ProvenanceStep] = []
        for payload, followed in custody_walk(source, start):
            outputs = payload.get("outputs") or []
            pick = followed if followed is not None else 0
            # Zero-copy scan: the holders list must not alias stored state.
            holders = (
                list(outputs[pick].get("public_keys", []))
                if 0 <= pick < len(outputs)
                else []
            )
            steps.append(
                ProvenanceStep(
                    transaction_id=payload["id"],
                    operation=payload.get("operation", "?"),
                    holders=holders,
                )
            )
        return steps

    def holdings(self, public_key: str) -> list[dict[str, Any]]:
        """Unspent outputs (wallet view) for an account."""
        return self._server.outputs_for(public_key, source=self._mode)

    # -- market structure -------------------------------------------------------------

    def bid_competition(self) -> dict[str, int]:
        """request_id -> number of bids (market concentration input)."""
        views = self._active_views()
        if views is not None:
            return views.bid_competition()
        competition: dict[str, int] = {}
        for bid in self._transactions.find({"operation": "BID"}, copy=False):
            for reference in bid.get("references", []):
                competition[reference] = competition.get(reference, 0) + 1
        return competition

    def settlement_rate(self) -> float:
        """Fraction of RFQs that reached an ACCEPT_BID."""
        source = self._source()
        requests = source.count("REQUEST")
        if requests == 0:
            return 0.0
        return source.count("ACCEPT_BID") / requests

    def operation_volume(self) -> dict[str, int]:
        """Committed transaction count per operation."""
        source = self._source()
        volume: dict[str, int] = {}
        for operation in ("CREATE", "TRANSFER", "REQUEST", "BID", "ACCEPT_BID",
                          "RETURN", "INTEREST", "PRE_REQUEST"):
            count = source.count(operation)
            if count:
                volume[operation] = count
        return volume
