"""A single document collection with indexes and update support."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator

from repro.common.encoding import deep_copy_json
from repro.common.errors import DuplicateKeyError, QueryError, StorageError
from repro.storage.documents import matches, resolve_path
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.query import QueryPlan, QueryPlanner


class Collection:
    """An in-process MongoDB-style collection.

    Documents are stored by internal integer id; inserted and returned
    documents are deep-copied at the boundary so callers can never mutate
    stored state in place.

    Args:
        name: collection name (used in error messages / stats).
    """

    def __init__(self, name: str):
        self.name = name
        self._documents: dict[int, dict[str, Any]] = {}
        self._next_id = itertools.count(1)
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        self._planner = QueryPlanner(self._hash_indexes, self._sorted_indexes)
        #: Running counters, inspected by benchmarks and the cost model.
        self.stats: dict[str, int] = {
            "inserts": 0,
            "deletes": 0,
            "updates": 0,
            "queries": 0,
            "index_probes": 0,
            "full_scans": 0,
            "documents_examined": 0,
        }

    def __len__(self) -> int:
        return len(self._documents)

    # -- index management ----------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Create (and backfill) a hash index on ``path``."""
        if path in self._hash_indexes:
            return
        index = HashIndex(path, unique=unique)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._hash_indexes[path] = index

    def create_sorted_index(self, path: str) -> None:
        """Create (and backfill) an ordered index on ``path``."""
        if path in self._sorted_indexes:
            return
        index = SortedIndex(path)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._sorted_indexes[path] = index

    def index_paths(self) -> list[str]:
        """Dotted paths of the hash indexes on this collection."""
        return sorted(self._hash_indexes)

    # -- writes ---------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> int:
        """Insert a document; returns its internal id.

        Raises:
            DuplicateKeyError: if a unique index is violated (the insert is
                rolled back from any indexes already updated).
            StorageError: if the document is not a mapping.
        """
        if not isinstance(document, dict):
            raise StorageError(f"{self.name}: documents must be mappings")
        stored = deep_copy_json(document)
        doc_id = next(self._next_id)
        added: list[HashIndex] = []
        try:
            for index in self._hash_indexes.values():
                index.add(doc_id, stored)
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(doc_id, stored)
            raise
        for sorted_index in self._sorted_indexes.values():
            sorted_index.add(doc_id, stored)
        self._documents[doc_id] = stored
        self.stats["inserts"] += 1
        return doc_id

    def insert_many(self, documents: list[dict[str, Any]]) -> list[int]:
        """Insert several documents; stops (and raises) at the first failure."""
        return [self.insert_one(document) for document in documents]

    def delete_many(self, query: dict[str, Any]) -> int:
        """Delete all matching documents; returns the count removed."""
        doomed = [doc_id for doc_id, _ in self._match_ids(query)]
        for doc_id in doomed:
            document = self._documents.pop(doc_id)
            for index in self._hash_indexes.values():
                index.remove(doc_id, document)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.remove(doc_id, document)
        self.stats["deletes"] += len(doomed)
        return len(doomed)

    def update_many(
        self,
        query: dict[str, Any],
        update: dict[str, Any] | Callable[[dict[str, Any]], dict[str, Any]],
    ) -> int:
        """Update all matching documents.

        ``update`` is either a ``{"$set": {...}}`` document (dotted paths
        supported) or a callable returning the replacement document.

        Raises:
            QueryError: if the update document uses unsupported operators.
        """
        updated = 0
        for doc_id, document in self._match_ids(query):
            if callable(update):
                replacement = deep_copy_json(update(deep_copy_json(document)))
            else:
                replacement = self._apply_update(document, update)
            for index in self._hash_indexes.values():
                index.remove(doc_id, document)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.remove(doc_id, document)
            self._documents[doc_id] = replacement
            for index in self._hash_indexes.values():
                index.add(doc_id, replacement)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.add(doc_id, replacement)
            updated += 1
        self.stats["updates"] += updated
        return updated

    @staticmethod
    def _apply_update(document: dict[str, Any], update: dict[str, Any]) -> dict[str, Any]:
        replacement = deep_copy_json(document)
        for operator, fields in update.items():
            if operator == "$set":
                for path, value in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                        if not isinstance(target, dict):
                            raise QueryError(f"$set path {path!r} crosses a non-object")
                    target[segments[-1]] = deep_copy_json(value)
            elif operator == "$inc":
                for path, delta in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                    target[segments[-1]] = target.get(segments[-1], 0) + delta
            elif operator == "$push":
                for path, value in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                    target.setdefault(segments[-1], []).append(deep_copy_json(value))
            else:
                raise QueryError(f"unsupported update operator: {operator!r}")
        return replacement

    # -- reads ----------------------------------------------------------------

    def _match_ids(self, query: dict[str, Any]) -> Iterator[tuple[int, dict[str, Any]]]:
        self.stats["queries"] += 1
        plan, candidate_ids = self._planner.plan(query, len(self._documents))
        if plan.kind == "index":
            self.stats["index_probes"] += 1
            candidates = sorted(candidate_ids or ())
        else:
            self.stats["full_scans"] += 1
            candidates = list(self._documents)
        for doc_id in candidates:
            document = self._documents.get(doc_id)
            if document is None:
                continue
            self.stats["documents_examined"] += 1
            if matches(document, query):
                yield doc_id, document

    def find(self, query: dict[str, Any] | None = None, limit: int | None = None) -> list[dict[str, Any]]:
        """Return copies of all documents matching ``query``."""
        query = query or {}
        results = []
        for _, document in self._match_ids(query):
            results.append(deep_copy_json(document))
            if limit is not None and len(results) >= limit:
                break
        return results

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """First matching document, or None."""
        found = self.find(query, limit=1)
        return found[0] if found else None

    def count(self, query: dict[str, Any] | None = None) -> int:
        """Number of matching documents."""
        if not query:
            return len(self._documents)
        return sum(1 for _ in self._match_ids(query))

    def distinct(self, path: str, query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct scalar values at ``path`` over matching documents."""
        seen: list[Any] = []
        for document in self.find(query or {}):
            for value in resolve_path(document, path):
                candidates = value if isinstance(value, list) else [value]
                for candidate in candidates:
                    if candidate not in seen:
                        seen.append(candidate)
        return seen

    def explain(self, query: dict[str, Any]) -> QueryPlan:
        """Expose the access path the planner would pick (for ablations)."""
        plan, _ = self._planner.plan(query, len(self._documents))
        return plan
