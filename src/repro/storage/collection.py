"""A single document collection with indexes and update support."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator

from repro.common.encoding import deep_copy_json
from repro.common.errors import DuplicateKeyError, QueryError, StorageError
from repro.storage.compiler import Predicate, compile_query
from repro.storage.documents import resolve_path
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.query import QueryPlan, QueryPlanner


class Collection:
    """An in-process MongoDB-style collection.

    Documents are stored by internal integer id.  Copy discipline is
    *freeze-on-insert*: a document is deep-copied exactly once when it
    crosses the insert boundary and is treated as immutable from then on
    (updates replace the stored document wholesale, they never mutate it).
    Reads therefore only pay for a copy when the caller may mutate the
    result: ``find(...)`` defaults to copying, while internal read-only
    consumers (validation, analytics) pass ``copy=False`` and receive the
    frozen stored documents directly — the zero-copy hot path.

    Queries are *compiled once* (:mod:`repro.storage.compiler`) and the
    resulting predicate closure is evaluated per candidate, instead of
    re-interpreting the query dictionary per document.

    Args:
        name: collection name (used in error messages / stats).
    """

    def __init__(self, name: str):
        self.name = name
        #: Optional journal sink (set by a WAL-backed Database): called
        #: with one logical-op record per successful mutation, *after*
        #: the in-memory apply — write-ahead ordering is provided by the
        #: group-commit layer, which makes the record durable before any
        #: externally visible acknowledgement leaves the node.
        self.journal: Callable[[dict[str, Any]], None] | None = None
        self._documents: dict[int, dict[str, Any]] = {}
        self._next_id = itertools.count(1)
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        self._planner = QueryPlanner(self._hash_indexes, self._sorted_indexes)
        #: Running counters, inspected by benchmarks and the cost model.
        self.stats: dict[str, int] = {
            "inserts": 0,
            "deletes": 0,
            "updates": 0,
            "queries": 0,
            "index_probes": 0,
            "full_scans": 0,
            "documents_examined": 0,
        }

    def __len__(self) -> int:
        return len(self._documents)

    # -- index management ----------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Create (and backfill) a hash index on ``path``."""
        if path in self._hash_indexes:
            return
        index = HashIndex(path, unique=unique)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._hash_indexes[path] = index

    def create_sorted_index(self, path: str) -> None:
        """Create (and backfill) an ordered index on ``path``."""
        if path in self._sorted_indexes:
            return
        index = SortedIndex(path)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._sorted_indexes[path] = index

    def index_paths(self) -> list[str]:
        """Dotted paths of the hash indexes on this collection."""
        return sorted(self._hash_indexes)

    # -- writes ---------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> int:
        """Insert a document; returns its internal id.

        The document is deep-copied here — the single freeze-on-insert
        copy — so later caller mutation cannot corrupt stored state.

        Raises:
            DuplicateKeyError: if a unique index is violated (the insert is
                rolled back from any indexes already updated).
            StorageError: if the document is not a mapping.
        """
        if not isinstance(document, dict):
            raise StorageError(f"{self.name}: documents must be mappings")
        stored = deep_copy_json(document)
        doc_id = next(self._next_id)
        added: list[HashIndex] = []
        try:
            for index in self._hash_indexes.values():
                index.add(doc_id, stored)
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(doc_id, stored)
            raise
        for sorted_index in self._sorted_indexes.values():
            sorted_index.add(doc_id, stored)
        self._documents[doc_id] = stored
        self.stats["inserts"] += 1
        if self.journal is not None:
            # ``stored`` is frozen from here on, so the journal record
            # may hold it by reference until the group flush encodes it.
            self.journal({"op": "insert", "c": self.name, "d": stored})
        return doc_id

    def insert_many(self, documents: list[dict[str, Any]]) -> list[int]:
        """Insert several documents; stops (and raises) at the first failure."""
        return [self.insert_one(document) for document in documents]

    def delete_many(self, query: dict[str, Any]) -> int:
        """Delete all matching documents; returns the count removed."""
        doomed = [doc_id for doc_id, _ in self._match_ids(query)]
        for doc_id in doomed:
            document = self._documents.pop(doc_id)
            for index in self._hash_indexes.values():
                index.remove(doc_id, document)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.remove(doc_id, document)
        self.stats["deletes"] += len(doomed)
        if doomed and self.journal is not None:
            self.journal(
                {"op": "delete", "c": self.name, "q": deep_copy_json(query)}
            )
        return len(doomed)

    def update_many(
        self,
        query: dict[str, Any],
        update: dict[str, Any] | Callable[[dict[str, Any]], dict[str, Any]],
    ) -> int:
        """Update all matching documents.

        ``update`` is either a ``{"$set": {...}}`` document (dotted paths
        supported) or a callable returning the replacement document.
        Stored documents are frozen: updates build a fresh replacement and
        swap it in, re-indexing the document.

        Raises:
            QueryError: if the update document uses unsupported operators.
        """
        updated = 0
        replacements: list[dict[str, Any]] = []
        for doc_id, document in self._match_ids(query):
            if callable(update):
                replacement = deep_copy_json(update(deep_copy_json(document)))
            else:
                replacement = self._apply_update(document, update)
            for index in self._hash_indexes.values():
                index.remove(doc_id, document)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.remove(doc_id, document)
            self._documents[doc_id] = replacement
            for index in self._hash_indexes.values():
                index.add(doc_id, replacement)
            for sorted_index in self._sorted_indexes.values():
                sorted_index.add(doc_id, replacement)
            replacements.append(replacement)
            updated += 1
        self.stats["updates"] += updated
        if updated and self.journal is not None:
            if callable(update):
                # A callable cannot be serialised; its *effects* can.
                # Replay swaps these replacements back in match order.
                self.journal(
                    {
                        "op": "replace",
                        "c": self.name,
                        "q": deep_copy_json(query),
                        "r": replacements,
                    }
                )
            else:
                self.journal(
                    {
                        "op": "update",
                        "c": self.name,
                        "q": deep_copy_json(query),
                        "u": deep_copy_json(update),
                    }
                )
        return updated

    @staticmethod
    def _apply_update(document: dict[str, Any], update: dict[str, Any]) -> dict[str, Any]:
        replacement = deep_copy_json(document)
        for operator, fields in update.items():
            if operator == "$set":
                for path, value in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                        if not isinstance(target, dict):
                            raise QueryError(f"$set path {path!r} crosses a non-object")
                    target[segments[-1]] = deep_copy_json(value)
            elif operator == "$inc":
                for path, delta in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                    target[segments[-1]] = target.get(segments[-1], 0) + delta
            elif operator == "$push":
                for path, value in fields.items():
                    target = replacement
                    segments = path.split(".")
                    for segment in segments[:-1]:
                        target = target.setdefault(segment, {})
                    target.setdefault(segments[-1], []).append(deep_copy_json(value))
            else:
                raise QueryError(f"unsupported update operator: {operator!r}")
        return replacement

    # -- reads ----------------------------------------------------------------

    def _match_ids(self, query: dict[str, Any]) -> Iterator[tuple[int, dict[str, Any]]]:
        self.stats["queries"] += 1
        predicate: Predicate = compile_query(query)
        plan, candidate_ids = self._planner.plan(
            query, len(self._documents), predicate.equalities
        )
        documents = self._documents
        matcher: Callable[[Any], bool] | None = predicate
        if plan.kind == "index":
            self.stats["index_probes"] += 1
            if not candidate_ids:
                candidates: list[int] = []
            elif len(candidate_ids) == 1:
                candidates = list(candidate_ids)
            else:
                candidates = sorted(candidate_ids)
            # Index-covered clause elimination: every candidate already
            # satisfies the probed equality, so only the residual clauses
            # run per document (None = single-equality query, no
            # per-document work at all).  String keys only — for bool/int
            # keys hash equality is coarser than query equality.
            if plan.index_path is not None and isinstance(plan.key, str):
                matcher = predicate.residual_for(plan.index_path)
        else:
            self.stats["full_scans"] += 1
            candidates = list(documents)
        stats = self.stats
        for doc_id in candidates:
            document = documents.get(doc_id)
            if document is None:
                continue
            stats["documents_examined"] += 1
            if matcher is None or matcher(document):
                yield doc_id, document

    def find(
        self,
        query: dict[str, Any] | None = None,
        limit: int | None = None,
        *,
        copy: bool = True,
    ) -> list[dict[str, Any]]:
        """Return all documents matching ``query``.

        Args:
            copy: when True (the default) each result is a deep copy the
                caller owns; ``copy=False`` returns the frozen stored
                documents directly — the zero-copy fast path for internal
                read-only consumers, which must not mutate them.
        """
        query = query or {}
        results: list[dict[str, Any]] = []
        for _, document in self._match_ids(query):
            results.append(deep_copy_json(document) if copy else document)
            if limit is not None and len(results) >= limit:
                break
        return results

    def find_one(
        self,
        query: dict[str, Any] | None = None,
        *,
        copy: bool = True,
    ) -> dict[str, Any] | None:
        """First matching document, or None (``copy`` as in :meth:`find`)."""
        found = self.find(query, limit=1, copy=copy)
        return found[0] if found else None

    def count(self, query: dict[str, Any] | None = None) -> int:
        """Number of matching documents."""
        if not query:
            return len(self._documents)
        return sum(1 for _ in self._match_ids(query))

    def distinct(self, path: str, query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values at ``path`` over matching documents.

        First-seen order is preserved.  Hashable values dedupe through a
        set; unhashable values (dicts/lists) fall back to an ordered
        linear scan and are copied before being returned.
        """
        seen_hashable: set[Any] = set()
        seen_unhashable: list[Any] = []
        distinct_values: list[Any] = []
        for document in self.find(query or {}, copy=False):
            for value in resolve_path(document, path):
                candidates = value if isinstance(value, list) else [value]
                for candidate in candidates:
                    try:
                        if candidate in seen_hashable:
                            continue
                        seen_hashable.add(candidate)
                        distinct_values.append(candidate)
                    except TypeError:
                        if candidate in seen_unhashable:
                            continue
                        seen_unhashable.append(candidate)
                        distinct_values.append(deep_copy_json(candidate))
        return distinct_values

    def explain(self, query: dict[str, Any]) -> QueryPlan:
        """Expose the access path the planner would pick (for ablations)."""
        plan, _ = self._planner.plan(query, len(self._documents))
        return plan
