"""Secondary indexes for the document store.

Two kinds, mirroring what the SmartchainDB deployment needs:

* :class:`HashIndex` — O(1) point lookups on an exact value (transaction
  id, ``asset.id``, output public keys...).  Optionally unique.
* :class:`SortedIndex` — bisect-backed ordered index supporting range
  scans (block heights, timestamps).

Index keys are extracted with the same dotted-path, array-fanning rules as
query evaluation, so an index on ``outputs.public_keys`` indexes a document
under *every* key appearing in any output.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.common.errors import DuplicateKeyError
from repro.storage.documents import resolve_path


def _index_keys(document: Any, path: str) -> set[Any]:
    """All hashable key values a document exposes at ``path``."""
    keys: set[Any] = set()
    for value in resolve_path(document, path):
        if isinstance(value, list):
            for element in value:
                if not isinstance(element, (dict, list)):
                    keys.add(element)
        elif not isinstance(value, dict):
            keys.add(value)
    return keys


class HashIndex:
    """Exact-match index mapping key value -> set of document ids."""

    def __init__(self, path: str, unique: bool = False):
        self.path = path
        self.unique = unique
        self._buckets: dict[Any, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add(self, doc_id: int, document: Any) -> None:
        """Index ``document`` under ``doc_id``.

        Raises:
            DuplicateKeyError: if unique and a key value is already taken.
        """
        keys = _index_keys(document, self.path)
        if self.unique:
            for key in keys:
                bucket = self._buckets.get(key)
                if bucket and doc_id not in bucket:
                    raise DuplicateKeyError(
                        f"duplicate value {key!r} for unique index on {self.path!r}"
                    )
        for key in keys:
            self._buckets.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: int, document: Any) -> None:
        """Drop a document from the index."""
        for key in _index_keys(document, self.path):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    def lookup(self, key: Any) -> set[int]:
        """Document ids stored under ``key`` (empty set if none)."""
        return set(self._buckets.get(key, ()))

    def contains_key(self, key: Any) -> bool:
        return key in self._buckets


class SortedIndex:
    """Ordered index over a single comparable field; supports range scans."""

    def __init__(self, path: str):
        self.path = path
        self._keys: list[Any] = []
        self._ids: list[int] = []

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, doc_id: int, document: Any) -> None:
        """Insert every comparable value the document exposes at the path."""
        for key in _index_keys(document, self.path):
            if isinstance(key, bool) or not isinstance(key, (int, float, str)):
                continue
            position = bisect.bisect_right(self._keys, key)
            self._keys.insert(position, key)
            self._ids.insert(position, doc_id)

    def remove(self, doc_id: int, document: Any) -> None:
        """Remove this document's entries (linear within equal-key run)."""
        for key in _index_keys(document, self.path):
            if isinstance(key, bool) or not isinstance(key, (int, float, str)):
                continue
            left = bisect.bisect_left(self._keys, key)
            right = bisect.bisect_right(self._keys, key)
            for position in range(left, right):
                if self._ids[position] == doc_id:
                    del self._keys[position]
                    del self._ids[position]
                    break

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield document ids with keys inside the given bounds, in order."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for position in range(start, stop):
            yield self._ids[position]

    def min_ids(self) -> Iterable[int]:
        """Ids ordered ascending by key (full scan order)."""
        return list(self._ids)
