"""Secondary indexes for the document store.

Two kinds, mirroring what the SmartchainDB deployment needs:

* :class:`HashIndex` — O(1) point lookups on an exact value (transaction
  id, ``asset.id``, output public keys...).  Optionally unique.
* :class:`SortedIndex` — a two-level blocked sorted structure supporting
  ordered range scans (block heights, timestamps) with amortised
  O(sqrt(n)) inserts and removals instead of the O(n) ``list.insert``
  memmove a single flat list costs.

Index keys are extracted with the same dotted-path, array-fanning rules as
query evaluation, so an index on ``outputs.public_keys`` indexes a document
under *every* key appearing in any output.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

from repro.common.errors import DuplicateKeyError
from repro.storage.documents import resolve_path

#: Shared empty lookup result — callers treat lookups as frozen views.
_EMPTY_IDS: frozenset[int] = frozenset()


def _index_keys(document: Any, path: str) -> set[Any]:
    """All hashable key values a document exposes at ``path``."""
    keys: set[Any] = set()
    for value in resolve_path(document, path):
        if isinstance(value, list):
            for element in value:
                if not isinstance(element, (dict, list)):
                    keys.add(element)
        elif not isinstance(value, dict):
            keys.add(value)
    return keys


class HashIndex:
    """Exact-match index mapping key value -> set of document ids."""

    def __init__(self, path: str, unique: bool = False):
        self.path = path
        self.unique = unique
        self._buckets: dict[Any, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add(self, doc_id: int, document: Any) -> None:
        """Index ``document`` under ``doc_id``.

        Raises:
            DuplicateKeyError: if unique and a key value is already taken.
        """
        keys = _index_keys(document, self.path)
        if self.unique:
            for key in keys:
                bucket = self._buckets.get(key)
                if bucket and doc_id not in bucket:
                    raise DuplicateKeyError(
                        f"duplicate value {key!r} for unique index on {self.path!r}"
                    )
        for key in keys:
            self._buckets.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: int, document: Any) -> None:
        """Drop a document from the index."""
        for key in _index_keys(document, self.path):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    def lookup(self, key: Any) -> frozenset[int] | set[int]:
        """Document ids stored under ``key`` — a *frozen view*, not a copy.

        The returned set is the index's live bucket (or a shared empty
        frozenset); callers must treat it as read-only.  The planner and
        ``Collection._match_ids`` immediately materialise their own sorted
        candidate list, so no allocation happens on the probe itself.
        """
        bucket = self._buckets.get(key)
        return bucket if bucket is not None else _EMPTY_IDS

    def contains_key(self, key: Any) -> bool:
        return key in self._buckets


class SortedIndex:
    """Ordered index over a single comparable field; supports range scans.

    Entries are kept in blocks of at most ``2 * LOAD`` (key, id) pairs
    (parallel lists), with a ``_maxes`` summary list holding each block's
    largest key.  Point operations bisect ``_maxes`` to find the block,
    then bisect inside it — so an insert shifts at most one block's worth
    of entries instead of the whole index, the classic two-level sorted
    list giving amortised O(sqrt(n)) updates while range scans stay a
    simple in-order walk.

    Duplicate keys preserve insertion order (inserts land after the
    existing equal-key run), matching the previous flat implementation.
    """

    #: Half the maximum block size; blocks split once they exceed 2*LOAD.
    LOAD = 512

    def __init__(self, path: str):
        self.path = path
        self._key_blocks: list[list[Any]] = []
        self._id_blocks: list[list[int]] = []
        self._maxes: list[Any] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    # -- internals -----------------------------------------------------------

    def _insert(self, key: Any, doc_id: int) -> None:
        maxes = self._maxes
        if not maxes:
            self._key_blocks.append([key])
            self._id_blocks.append([doc_id])
            maxes.append(key)
            self._length = 1
            return
        # First block whose max is > key keeps equal keys in arrival order;
        # keys beyond every max go into the last block.
        position = bisect_right(maxes, key)
        if position == len(maxes):
            position -= 1
        keys = self._key_blocks[position]
        ids = self._id_blocks[position]
        offset = bisect_right(keys, key)
        keys.insert(offset, key)
        ids.insert(offset, doc_id)
        if offset == len(keys) - 1:
            maxes[position] = keys[-1]
        self._length += 1
        if len(keys) > 2 * self.LOAD:
            half = len(keys) // 2
            self._key_blocks[position : position + 1] = [keys[:half], keys[half:]]
            self._id_blocks[position : position + 1] = [ids[:half], ids[half:]]
            maxes[position : position + 1] = [keys[half - 1], keys[-1]]

    def _delete(self, key: Any, doc_id: int) -> None:
        """Remove one ``(key, doc_id)`` entry if present."""
        maxes = self._maxes
        position = bisect_left(maxes, key)
        while position < len(maxes):
            keys = self._key_blocks[position]
            if keys and keys[0] > key:
                return
            ids = self._id_blocks[position]
            left = bisect_left(keys, key)
            right = bisect_right(keys, key)
            for offset in range(left, right):
                if ids[offset] == doc_id:
                    del keys[offset]
                    del ids[offset]
                    self._length -= 1
                    if not keys:
                        del self._key_blocks[position]
                        del self._id_blocks[position]
                        del maxes[position]
                    else:
                        maxes[position] = keys[-1]
                    return
            if right < len(keys):
                # The equal-key run ended inside this block: not present.
                return
            position += 1

    # -- public API ----------------------------------------------------------

    def add(self, doc_id: int, document: Any) -> None:
        """Insert every comparable value the document exposes at the path."""
        for key in _index_keys(document, self.path):
            if isinstance(key, bool) or not isinstance(key, (int, float, str)):
                continue
            self._insert(key, doc_id)

    def remove(self, doc_id: int, document: Any) -> None:
        """Remove this document's entries (one per distinct key value)."""
        for key in _index_keys(document, self.path):
            if isinstance(key, bool) or not isinstance(key, (int, float, str)):
                continue
            self._delete(key, doc_id)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield document ids with keys inside the given bounds, in order."""
        maxes = self._maxes
        if not maxes:
            return
        if low is None:
            position = 0
            offset = 0
        else:
            position = (
                bisect_left(maxes, low) if include_low else bisect_right(maxes, low)
            )
            if position >= len(maxes):
                return
            keys = self._key_blocks[position]
            offset = (
                bisect_left(keys, low) if include_low else bisect_right(keys, low)
            )
        while position < len(self._key_blocks):
            keys = self._key_blocks[position]
            ids = self._id_blocks[position]
            if high is None:
                stop = len(keys)
            elif include_high:
                stop = bisect_right(keys, high)
            else:
                stop = bisect_left(keys, high)
            for index in range(offset, stop):
                yield ids[index]
            if stop < len(keys):
                return
            position += 1
            offset = 0

    def min_ids(self) -> Iterable[int]:
        """Ids ordered ascending by key (full scan order)."""
        result: list[int] = []
        for ids in self._id_blocks:
            result.extend(ids)
        return result
