"""Query compilation: interpret a query once, evaluate it many times.

:func:`repro.storage.documents.matches` walks the query dictionary for
*every* candidate document — re-splitting dotted paths, re-dispatching on
operator names, re-compiling regexes.  On the hot path (the planner
narrows a query to an index bucket and then fully matches each candidate)
that per-tuple interpretation dominates, the same way interpreted
predicates dominate naive query evaluation in relational engines.

:func:`compile_query` lifts all of that out of the inner loop: the query
dictionary is translated *once* into a tree of nested closures — paths
pre-split, operands pre-bound, regexes pre-compiled — and the resulting
:class:`Predicate` is a plain callable ``doc -> bool``.  Compiled
predicates are cached in a small LRU keyed on the canonical JSON bytes of
the query, so the repeated queries issued by validation and analytics
(``{"operation": "BID", "references": <rfq>}`` and friends) compile
exactly once per shape.

``matches()`` is kept untouched as the parity oracle; the property suite
in ``tests/storage/test_compiler.py`` asserts ``compile_query(q)(doc) ==
matches(doc, q)`` across a generated corpus.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Callable

from repro.common.encoding import canonical_serialize, deep_copy_json
from repro.common.errors import EncodingError, QueryError
from repro.storage.documents import (
    _TYPE_NAMES,
    _is_operator_doc,
    _match_operator_doc,
    _values_equal,
    extract_equality_paths,
)

#: A compiled condition over the list of values a path resolved to.
ValuesMatcher = Callable[[list[Any]], bool]

#: A compiled condition over a whole document.
DocMatcher = Callable[[Any], bool]

_EMPTY: list[Any] = []


#: Sentinel distinguishing "not yet computed" from "fully covered" (None).
_MISSING = object()


def _may_raise_at_runtime(condition: Any) -> bool:
    """True if evaluating ``condition`` can raise for *some* document.

    Every compiled operator is runtime-error-free except ``$elemMatch``,
    whose oracle semantics raise lazily per element (dict elements under
    an operator-doc operand; non-dict elements under a plain operand).
    Conservative: any nested ``$elemMatch`` key counts.
    """
    if isinstance(condition, dict):
        return any(
            key == "$elemMatch" or _may_raise_at_runtime(value)
            for key, value in condition.items()
        )
    if isinstance(condition, list):
        return any(_may_raise_at_runtime(value) for value in condition)
    return False


class Predicate:
    """A compiled query: ``predicate(document) -> bool``.

    Attributes:
        query: the original query dictionary (for explain/debugging).
        equalities: the top-level exact-equality constraints, pre-extracted
            so the planner never re-walks the query.
    """

    __slots__ = ("query", "equalities", "_matcher", "_clauses", "_residuals")

    def __init__(
        self,
        query: dict[str, Any],
        clauses: tuple[tuple[str, DocMatcher], ...],
    ):
        self.query = query
        self.equalities = extract_equality_paths(query)
        # Selectivity ordering: cheap exact-equality clauses short-circuit
        # the conjunction before expensive operator clauses run.  Only
        # when every clause is runtime-error-free — reordering must not
        # change which lazy QueryError (if any) a pathological
        # $elemMatch surfaces.
        if len(clauses) > 1 and not any(
            _may_raise_at_runtime(condition) for condition in query.values()
        ):
            clauses = tuple(
                sorted(clauses, key=lambda pair: 0 if pair[0] in self.equalities else 1)
            )
        self._matcher = _conjoin(clauses)
        self._clauses = clauses
        self._residuals: dict[str, DocMatcher | None] = {}

    def __call__(self, document: Any) -> bool:
        return self._matcher(document)

    def residual_for(self, covered_path: str) -> DocMatcher | None:
        """The predicate minus the equality clause an index probe covers.

        When the planner probes a hash index on ``covered_path`` for a
        *string* key, every candidate in the bucket is already known to
        satisfy that clause (string hash-equality coincides with query
        equality; the caller must enforce the string-key guard — for
        bool/int keys hash collisions like ``True == 1`` break the
        equivalence).  Only the residual clauses need evaluating, and a
        single-equality query needs no per-document work at all — in
        which case this returns None.
        """
        cached = self._residuals.get(covered_path, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        if covered_path not in self.equalities:
            result: DocMatcher | None = self._matcher
        else:
            rest = tuple(
                matcher for key, matcher in self._clauses if key != covered_path
            )
            if not rest:
                result = None
            elif len(rest) == 1:
                result = rest[0]
            else:
                matchers = rest

                def match(document: Any) -> bool:
                    for matcher in matchers:
                        if not matcher(document):
                            return False
                    return True

                result = match
        self._residuals[covered_path] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Predicate {self.query!r}>"


# -- path resolution ----------------------------------------------------------


def _compile_resolver(path: str) -> Callable[[Any], list[Any]]:
    """Pre-split a dotted path into a resolver closure.

    Mirrors :func:`repro.storage.documents.resolve_path` exactly (array
    fan-out, numeric segments indexing), but the split and the per-segment
    ``isdigit`` decisions happen at compile time.
    """
    segments = path.split(".")
    compiled = [(segment, int(segment) if segment.isdigit() else None) for segment in segments]

    if len(compiled) == 1:
        segment, index = compiled[0]

        def resolve_single(document: Any) -> list[Any]:
            if isinstance(document, dict):
                if segment in document:
                    return [document[segment]]
                return _EMPTY
            if isinstance(document, list):
                if index is not None:
                    if index < len(document):
                        return [document[index]]
                    return _EMPTY
                return [
                    element[segment]
                    for element in document
                    if isinstance(element, dict) and segment in element
                ]
            return _EMPTY

        return resolve_single

    total = len(compiled)

    def resolve_tail(values: list[Any], start: int) -> list[Any]:
        """Generic array-fanning walk from segment ``start`` onwards."""
        for position in range(start, total):
            segment, index = compiled[position]
            next_values: list[Any] = []
            for value in values:
                if isinstance(value, dict):
                    if segment in value:
                        next_values.append(value[segment])
                elif isinstance(value, list):
                    if index is not None:
                        if index < len(value):
                            next_values.append(value[index])
                    else:
                        for element in value:
                            if isinstance(element, dict) and segment in element:
                                next_values.append(element[segment])
            if not next_values:
                return _EMPTY
            values = next_values
        return values

    def resolve(document: Any) -> list[Any]:
        # Fast chain: most documents are dict→dict→…→value along the
        # path, which needs no intermediate fan-out lists at all.  The
        # first non-dict hop falls back to the generic walk.
        value = document
        for position in range(total):
            if isinstance(value, dict):
                segment = compiled[position][0]
                if segment in value:
                    value = value[segment]
                else:
                    return _EMPTY
            else:
                return resolve_tail([value], position)
        return [value]

    return resolve


def _each_candidate(values: list[Any]):
    """Every resolved value and, for arrays, every element (Mongo rules)."""
    for value in values:
        yield value
        if isinstance(value, list):
            yield from value


# -- operator compilation -----------------------------------------------------


def _compile_comparison(operator: str, operand: Any) -> ValuesMatcher:
    """``$gt/$gte/$lt/$lte`` with the oracle's type-compatibility rules.

    The operand's comparability class is decided at compile time; the
    per-candidate loop is inlined (no generator) with the bool exclusion
    and the number/string compatibility check folded in.
    """
    operand_is_bool = isinstance(operand, bool)
    operand_is_number = isinstance(operand, (int, float)) and not operand_is_bool
    operand_is_str = isinstance(operand, str)

    if operand_is_bool or not (operand_is_number or operand_is_str):
        def match_never(values: list[Any]) -> bool:
            return False

        return match_never

    if operator == "$gt":
        def compare(left: Any) -> bool:
            return left > operand
    elif operator == "$gte":
        def compare(left: Any) -> bool:
            return left >= operand
    elif operator == "$lt":
        def compare(left: Any) -> bool:
            return left < operand
    else:
        def compare(left: Any) -> bool:
            return left <= operand

    comparable = (int, float) if operand_is_number else str

    def match(values: list[Any]) -> bool:
        for value in values:
            if isinstance(value, comparable):
                if not isinstance(value, bool) and compare(value):
                    return True
            elif isinstance(value, list):
                for element in value:
                    if (
                        isinstance(element, comparable)
                        and not isinstance(element, bool)
                        and compare(element)
                    ):
                        return True
        return False

    return match


def _compile_operator(operator: str, operand: Any) -> ValuesMatcher:
    """Compile one ``$op: operand`` pair into a values matcher.

    Raises:
        QueryError: for unknown operators or malformed operands — the same
            errors the interpreter raises, surfaced at compile time.
    """
    if operator == "$exists":
        expected = bool(operand)

        def match_exists(values: list[Any]) -> bool:
            return bool(values) == expected

        return match_exists

    if operator == "$eq":
        def match_eq(values: list[Any]) -> bool:
            return any(_values_equal(candidate, operand) for candidate in _each_candidate(values))

        return match_eq

    if operator == "$ne":
        def match_ne(values: list[Any]) -> bool:
            return not any(
                _values_equal(candidate, operand) for candidate in _each_candidate(values)
            )

        return match_ne

    if operator in ("$gt", "$gte", "$lt", "$lte"):
        return _compile_comparison(operator, operand)

    if operator == "$in":
        if not isinstance(operand, list):
            raise QueryError("$in requires an array operand")
        items = list(operand)

        def match_in(values: list[Any]) -> bool:
            return any(
                _values_equal(candidate, item)
                for candidate in _each_candidate(values)
                for item in items
            )

        return match_in

    if operator == "$nin":
        if not isinstance(operand, list):
            raise QueryError("$nin requires an array operand")
        items = list(operand)

        def match_nin(values: list[Any]) -> bool:
            return not any(
                _values_equal(candidate, item)
                for candidate in _each_candidate(values)
                for item in items
            )

        return match_nin

    if operator == "$all":
        if not isinstance(operand, list):
            raise QueryError("$all requires an array operand")
        items = list(operand)

        def match_all(values: list[Any]) -> bool:
            for value in values:
                if not isinstance(value, list):
                    continue
                if all(
                    any(_values_equal(element, item) for element in value) for item in items
                ):
                    return True
            return False

        return match_all

    if operator == "$size":
        def match_size(values: list[Any]) -> bool:
            return any(isinstance(value, list) and len(value) == operand for value in values)

        return match_size

    if operator == "$elemMatch":
        if not isinstance(operand, dict):
            raise QueryError("$elemMatch requires a query document")
        if _is_operator_doc(operand):
            # Operator-doc operand: non-dict elements are evaluated against
            # it; the interpreter routes dict elements through full
            # ``matches``, which rejects $-prefixed top-level keys — and it
            # does so lazily, only when such an element is reached.
            element_operators = _compile_operator_doc(operand)
            first_key = next(iter(operand))

            def match_elem_operators(values: list[Any]) -> bool:
                for value in values:
                    if not isinstance(value, list):
                        continue
                    for element in value:
                        if isinstance(element, dict):
                            raise QueryError(f"unknown top-level operator: {first_key!r}")
                        if element_operators([element]):
                            return True
                return False

            return match_elem_operators

        # Plain (or empty) query operand: dict elements run the compiled
        # sub-predicate; non-dict elements go through the interpreter's
        # operator-doc evaluator, whose lazy per-element errors cannot be
        # pre-compiled — that cold branch stays interpreted.
        element_predicate = _compile_matcher(operand)

        def match_elem(values: list[Any]) -> bool:
            for value in values:
                if not isinstance(value, list):
                    continue
                for element in value:
                    if isinstance(element, dict):
                        if element_predicate(element):
                            return True
                    elif _match_operator_doc([element], operand, None):
                        return True
            return False

        return match_elem

    if operator == "$regex":
        pattern = re.compile(operand)
        search = pattern.search

        def match_regex(values: list[Any]) -> bool:
            return any(
                isinstance(candidate, str) and search(candidate)
                for candidate in _each_candidate(values)
            )

        return match_regex

    if operator == "$type":
        expected = _TYPE_NAMES.get(operand)
        if expected is None:
            raise QueryError(f"unknown $type name: {operand!r}")

        def match_type(values: list[Any]) -> bool:
            return any(isinstance(value, expected) for value in values)

        return match_type

    if operator == "$not":
        if not isinstance(operand, dict):
            raise QueryError("$not requires an operator document")
        inner = _compile_operator_doc(operand)

        def match_not(values: list[Any]) -> bool:
            return not inner(values)

        return match_not

    raise QueryError(f"unknown query operator: {operator!r}")


def _compile_operator_doc(operators: dict[str, Any]) -> ValuesMatcher:
    """Compile ``{"$gt": 3, "$lt": 9}`` into a conjunction over values."""
    matchers = tuple(
        _compile_operator(operator, operand) for operator, operand in operators.items()
    )
    if len(matchers) == 1:
        return matchers[0]

    def match(values: list[Any]) -> bool:
        for matcher in matchers:
            if not matcher(values):
                return False
        return True

    return match


def _compile_equality(condition: Any) -> ValuesMatcher:
    """Direct-equality condition (``{"operation": "BID"}``).

    Scalars are by far the most common case, so they get a branch with no
    helper-function dispatch at all.
    """
    if not isinstance(condition, (dict, list, bool)) and condition is not None:
        def match_scalar(values: list[Any]) -> bool:
            for value in values:
                if not isinstance(value, bool) and value == condition:
                    return True
                if isinstance(value, list):
                    for element in value:
                        if not isinstance(element, bool) and element == condition:
                            return True
            return False

        return match_scalar

    def match(values: list[Any]) -> bool:
        return any(_values_equal(candidate, condition) for candidate in _each_candidate(values))

    return match


# -- whole-query compilation --------------------------------------------------


def _compile_clause(key: str, condition: Any) -> DocMatcher:
    """Compile one top-level ``key: condition`` entry."""
    if key == "$and":
        if not isinstance(condition, list):
            raise QueryError("$and requires an array of queries")
        branches = tuple(_compile_matcher(sub) for sub in condition)

        def match_and(document: Any) -> bool:
            for branch in branches:
                if not branch(document):
                    return False
            return True

        return match_and

    if key == "$or":
        if not isinstance(condition, list):
            raise QueryError("$or requires an array of queries")
        branches = tuple(_compile_matcher(sub) for sub in condition)

        def match_or(document: Any) -> bool:
            for branch in branches:
                if branch(document):
                    return True
            return False

        return match_or

    if key == "$nor":
        if not isinstance(condition, list):
            raise QueryError("$nor requires an array of queries")
        branches = tuple(_compile_matcher(sub) for sub in condition)

        def match_nor(document: Any) -> bool:
            for branch in branches:
                if branch(document):
                    return False
            return True

        return match_nor

    if key.startswith("$"):
        raise QueryError(f"unknown top-level operator: {key!r}")

    resolve = _compile_resolver(key)
    if _is_operator_doc(condition):
        values_matcher = _compile_operator_doc(condition)
    else:
        values_matcher = _compile_equality(condition)

    def match_path(document: Any) -> bool:
        return values_matcher(resolve(document))

    return match_path


def _compile_clauses(query: dict[str, Any]) -> tuple[tuple[str, DocMatcher], ...]:
    """Compile every top-level entry, keyed so covered clauses can drop."""
    if not isinstance(query, dict):
        raise QueryError("query must be a mapping")
    return tuple(
        (key, _compile_clause(key, condition)) for key, condition in query.items()
    )


def _conjoin(clauses: tuple[tuple[str, DocMatcher], ...]) -> DocMatcher:
    if not clauses:
        return lambda document: True
    if len(clauses) == 1:
        return clauses[0][1]
    matchers = tuple(matcher for _, matcher in clauses)

    def match(document: Any) -> bool:
        for matcher in matchers:
            if not matcher(document):
                return False
        return True

    return match


def _compile_matcher(query: dict[str, Any]) -> DocMatcher:
    """Compile a whole (sub)query into a document matcher."""
    return _conjoin(_compile_clauses(query))


# -- the LRU-cached entry point -----------------------------------------------

_CACHE_MAX = 1024
_cache: "OrderedDict[str, Predicate]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def compile_query(query: dict[str, Any]) -> Predicate:
    """Compile ``query`` into a reusable :class:`Predicate`.

    Compiled predicates are cached in an LRU keyed on the canonical JSON
    serialisation of the query, so two structurally identical queries (the
    overwhelmingly common case on the validation hot path) share one
    compilation.  Queries containing non-JSON values (e.g. compiled
    pattern objects) are compiled uncached.

    Raises:
        QueryError: on malformed queries — the same class (and in general
            the same message) the interpreter would raise lazily.
    """
    global _cache_hits, _cache_misses
    if not isinstance(query, dict):
        raise QueryError("query must be a mapping")
    try:
        key = canonical_serialize(query)
    except EncodingError:
        key = None
    if key is not None:
        cached = _cache.get(key)
        if cached is not None:
            _cache_hits += 1
            _cache.move_to_end(key)
            return cached
    _cache_misses += 1
    # Compile from a private deep copy: closures bind operand objects by
    # reference, and a cached predicate must not change behaviour when
    # the caller later mutates their query dict (the interpreter, which
    # re-reads the live dict, was immune to this by construction).
    query = deep_copy_json(query)
    predicate = Predicate(query, _compile_clauses(query))
    if key is not None:
        _cache[key] = predicate
        if len(_cache) > _CACHE_MAX:
            _cache.popitem(last=False)
    return predicate


def cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the compilation cache (benchmarks)."""
    return {"hits": _cache_hits, "misses": _cache_misses, "size": len(_cache)}


def clear_cache() -> None:
    """Drop every cached predicate (tests and benchmarks)."""
    global _cache_hits, _cache_misses
    _cache.clear()
    _cache_hits = 0
    _cache_misses = 0
