"""The node-local database: named collections with the SmartchainDB layout.

Mirrors the MongoDB database each BigchainDB node runs, including the new
``accept_tx_recovery`` collection the paper introduces for nested
transaction recovery (Section 4.2).
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import CollectionNotFoundError
from repro.storage.collection import Collection

#: Collections a SmartchainDB node provisions, with their hash indexes.
SMARTCHAINDB_LAYOUT: dict[str, list[tuple[str, bool]]] = {
    # (index path, unique)
    "transactions": [
        ("id", True),
        ("operation", False),
        ("asset.id", False),
        ("outputs.public_keys", False),
        ("references", False),
        ("inputs.fulfills.transaction_id", False),
    ],
    "assets": [("id", True)],
    "metadata": [("id", True)],
    "blocks": [("height", True)],
    "utxos": [("transaction_id", False), ("public_keys", False)],
    "accept_tx_recovery": [("accept_id", True), ("rfq_id", False), ("status", False)],
    # Sharded deployments: 2PC lock table (prepared/committed cross-shard
    # spends of local UTXOs) and the coordinator's write-ahead outbox.
    "shard_locks": [("transaction_id", False), ("holder", False), ("status", False)],
    "shard_outbox": [("tx_id", True), ("state", False)],
    # Elastic resharding: per-shard durable registry of outputs whose
    # ownership moved in (target side) or out (source side) of this
    # shard by a migration cutover — the replica-consistency invariant
    # and crash recovery both read it.
    "shard_migrations": [
        ("migration_id", False),
        ("transaction_id", False),
        ("direction", False),
    ],
}


class Database:
    """A named set of collections, creatable on demand.

    Args:
        name: database name.
        wal: optional journal sink — anything with an ``append(record)``
            method, normally a
            :class:`~repro.durability.commitlog.GroupCommitLog`.  When
            set, every collection mutation (insert/delete/update) emits
            one logical-op record, so the database can be rebuilt from
            snapshot + journal after a crash
            (:mod:`repro.durability.recovery`).
    """

    def __init__(self, name: str = "smartchaindb", wal: Any = None):
        self.name = name
        self.wal = wal
        self._collections: dict[str, Collection] = {}

    def create_collection(self, name: str) -> Collection:
        """Create (or fetch) a collection by name."""
        collection = self._collections.get(name)
        if collection is None:
            collection = Collection(name)
            self._collections[name] = collection
            if self.wal is not None:
                collection.journal = self._journal
        return collection

    def attach_wal(self, wal: Any) -> None:
        """Journal all further mutations (existing collections included).

        Recovery uses this: the database is rebuilt journal-free (replay
        must not re-journal), then reattached so post-restart mutations
        extend the log.
        """
        self.wal = wal
        for collection in self._collections.values():
            collection.journal = self._journal if wal is not None else None

    def _journal(self, op: dict[str, Any]) -> None:
        self.wal.append({"k": "db", **op})

    def collection(self, name: str) -> Collection:
        """Fetch an existing collection.

        Raises:
            CollectionNotFoundError: if it was never created.
        """
        collection = self._collections.get(name)
        if collection is None:
            raise CollectionNotFoundError(f"no collection named {name!r} in {self.name!r}")
        return collection

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-collection operation counters (benchmark instrumentation)."""
        return {
            name: {"size": len(collection), **collection.stats}
            for name, collection in self._collections.items()
        }

    def publish_metrics(self, registry, node: str = "") -> None:
        """Mirror per-collection counters into a telemetry registry.

        Gauges, not counters: snapshots are idempotent — re-publishing
        sets the same absolute values instead of double counting.
        """
        for name, stats in self.stats().items():
            for key, value in stats.items():
                registry.gauge(
                    f"db_{key}", node=node, collection=name
                ).set(value)


def make_smartchaindb_database(
    name: str = "smartchaindb", indexed: bool = True, wal: Any = None
) -> Database:
    """Provision the standard SmartchainDB collection layout.

    Args:
        name: database name.
        indexed: when False, collections are created *without* their hash
            indexes — used by the indexing ablation benchmark to show why
            BigchainDB's latency stays flat.
        wal: optional journal sink (see :class:`Database`).
    """
    database = Database(name, wal=wal)
    for collection_name, indexes in SMARTCHAINDB_LAYOUT.items():
        collection = database.create_collection(collection_name)
        if indexed:
            for path, unique in indexes:
                collection.create_index(path, unique=unique)
            collection.create_sorted_index("height") if collection_name == "blocks" else None
    return database
