"""In-process document store standing in for MongoDB."""

from repro.storage.collection import Collection
from repro.storage.compiler import Predicate, compile_query
from repro.storage.database import SMARTCHAINDB_LAYOUT, Database, make_smartchaindb_database
from repro.storage.documents import extract_equality_paths, matches, resolve_path
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.query import QueryPlan, QueryPlanner

__all__ = [
    "Collection",
    "Database",
    "HashIndex",
    "Predicate",
    "QueryPlan",
    "QueryPlanner",
    "SMARTCHAINDB_LAYOUT",
    "SortedIndex",
    "compile_query",
    "extract_equality_paths",
    "make_smartchaindb_database",
    "matches",
    "resolve_path",
]
