"""Query planning: choose an index probe or fall back to a scan.

BigchainDB's flat latency under growing payloads (paper Section 5.2.1
analysis) comes from "efficient indexing for database queries".  The
planner here reproduces that behaviour: if a query carries a top-level
equality on an indexed path, candidate documents come from the hash index
and only those are fully matched; otherwise the collection is scanned.

The plan is surfaced (``QueryPlan``) so the ablation benchmark can compare
indexed vs scan execution explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.storage.documents import extract_equality_paths
from repro.storage.indexes import HashIndex, SortedIndex


@dataclass(frozen=True)
class QueryPlan:
    """Chosen access path for one query.

    Attributes:
        kind: ``"index"`` or ``"scan"``.
        index_path: dotted path of the probed index (index plans only).
        key: the equality key probed (index plans only).
        candidates: number of documents the plan will fully match.
    """

    kind: str
    index_path: str | None
    key: Any
    candidates: int


class QueryPlanner:
    """Picks the cheapest access path among available hash indexes."""

    def __init__(self, indexes: dict[str, HashIndex], sorted_indexes: dict[str, SortedIndex]):
        self._indexes = indexes
        self._sorted_indexes = sorted_indexes

    def plan(
        self,
        query: dict[str, Any],
        collection_size: int,
        equalities: dict[str, Any] | None = None,
    ) -> tuple[QueryPlan, frozenset[int] | set[int] | None]:
        """Plan ``query``; returns the plan and candidate ids (None = scan).

        Strategy: among all indexed equality paths, pick the one with the
        smallest bucket (most selective).  A probe that finds no bucket
        short-circuits to an empty candidate set.

        Args:
            equalities: the query's top-level exact-equality constraints,
                if the caller already has them (compiled predicates carry
                them pre-extracted); recomputed from ``query`` otherwise.

        The returned candidate set is a *frozen view* of the chosen index
        bucket — callers must materialise it (``sorted(...)``) before
        mutating the collection.
        """
        if equalities is None:
            equalities = extract_equality_paths(query)
        best_path: str | None = None
        best_ids: frozenset[int] | set[int] | None = None
        for path, key in equalities.items():
            index = self._indexes.get(path)
            if index is None:
                continue
            ids = index.lookup(key)
            if best_ids is None or len(ids) < len(best_ids):
                best_path = path
                best_ids = ids
                if not ids:
                    break
        if best_ids is not None:
            plan = QueryPlan(
                kind="index",
                index_path=best_path,
                key=equalities.get(best_path) if best_path else None,
                candidates=len(best_ids),
            )
            return plan, best_ids
        plan = QueryPlan(kind="scan", index_path=None, key=None, candidates=collection_size)
        return plan, None
