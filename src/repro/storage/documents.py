"""Document matching: MongoDB-style query evaluation.

The SmartchainDB server queries MongoDB with operator documents
(``getTxFromDB``, ``getLockedBids``, ``getAcceptTxForRFQ`` in Algorithms
2-3 all compile to such queries).  This module evaluates a faithful subset
of that query language against plain Python dictionaries:

* equality on dotted paths (``"asset.id": "..."``)
* comparison operators ``$eq $ne $gt $gte $lt $lte``
* membership ``$in $nin``
* existence/type ``$exists $type``
* arrays ``$all $size $elemMatch``
* logic ``$and $or $nor $not``
* regex ``$regex``

Array-traversal semantics follow MongoDB: a dotted path that crosses an
array matches if *any* element matches.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from repro.common.errors import QueryError

_TYPE_NAMES = {
    "string": str,
    "int": int,
    "double": float,
    "bool": bool,
    "object": dict,
    "array": list,
    "null": type(None),
}

_COMPARABLE = (int, float, str)


def resolve_path(document: Any, path: str) -> list[Any]:
    """Resolve a dotted path, fanning out across arrays.

    Returns every value reachable by the path (possibly none).  Numeric
    path segments index into arrays; non-numeric segments applied to an
    array fan out over its elements, like MongoDB.
    """
    values = [document]
    for segment in path.split("."):
        next_values: list[Any] = []
        for value in values:
            if isinstance(value, dict):
                if segment in value:
                    next_values.append(value[segment])
            elif isinstance(value, list):
                if segment.isdigit():
                    index = int(segment)
                    if index < len(value):
                        next_values.append(value[index])
                else:
                    for element in value:
                        if isinstance(element, dict) and segment in element:
                            next_values.append(element[segment])
        values = next_values
    return values


def _candidates(value: Any) -> Iterator[Any]:
    """A resolved value and, if it is an array, its elements (Mongo rules)."""
    yield value
    if isinstance(value, list):
        yield from value


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right


def _compare(left: Any, right: Any, operator: str) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        return False
    if operator == "$gt":
        return left > right
    if operator == "$gte":
        return left >= right
    if operator == "$lt":
        return left < right
    return left <= right


def _match_operator_doc(values: list[Any], operators: dict[str, Any], document: Any) -> bool:
    """Evaluate an operator document (``{"$gt": 3, "$lt": 9}``) over values."""
    for operator, operand in operators.items():
        if operator == "$exists":
            present = bool(values)
            if bool(operand) != present:
                return False
            continue
        if operator == "$eq":
            if not any(_values_equal(candidate, operand)
                       for value in values for candidate in _candidates(value)):
                return False
            continue
        if operator == "$ne":
            if any(_values_equal(candidate, operand)
                   for value in values for candidate in _candidates(value)):
                return False
            continue
        if operator in ("$gt", "$gte", "$lt", "$lte"):
            if not any(_compare(candidate, operand, operator)
                       for value in values for candidate in _candidates(value)):
                return False
            continue
        if operator == "$in":
            if not isinstance(operand, list):
                raise QueryError("$in requires an array operand")
            if not any(_values_equal(candidate, item)
                       for value in values for candidate in _candidates(value)
                       for item in operand):
                return False
            continue
        if operator == "$nin":
            if not isinstance(operand, list):
                raise QueryError("$nin requires an array operand")
            if any(_values_equal(candidate, item)
                   for value in values for candidate in _candidates(value)
                   for item in operand):
                return False
            continue
        if operator == "$all":
            if not isinstance(operand, list):
                raise QueryError("$all requires an array operand")
            arrays = [value for value in values if isinstance(value, list)]
            if not any(all(any(_values_equal(element, item) for element in array)
                           for item in operand)
                       for array in arrays):
                return False
            continue
        if operator == "$size":
            if not any(isinstance(value, list) and len(value) == operand for value in values):
                return False
            continue
        if operator == "$elemMatch":
            if not isinstance(operand, dict):
                raise QueryError("$elemMatch requires a query document")
            matched = False
            for value in values:
                if not isinstance(value, list):
                    continue
                for element in value:
                    if isinstance(element, dict) and matches(element, operand):
                        matched = True
                        break
                    if not isinstance(element, dict) and _match_operator_doc([element], operand, document):
                        matched = True
                        break
                if matched:
                    break
            if not matched:
                return False
            continue
        if operator == "$regex":
            pattern = re.compile(operand)
            if not any(isinstance(candidate, str) and pattern.search(candidate)
                       for value in values for candidate in _candidates(value)):
                return False
            continue
        if operator == "$type":
            expected = _TYPE_NAMES.get(operand)
            if expected is None:
                raise QueryError(f"unknown $type name: {operand!r}")
            if not any(isinstance(value, expected) for value in values):
                return False
            continue
        if operator == "$not":
            if not isinstance(operand, dict):
                raise QueryError("$not requires an operator document")
            if _match_operator_doc(values, operand, document):
                return False
            continue
        raise QueryError(f"unknown query operator: {operator!r}")
    return True


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, dict) and value and all(key.startswith("$") for key in value)


def matches(document: Any, query: dict[str, Any]) -> bool:
    """True if ``document`` satisfies ``query``.

    Raises:
        QueryError: on malformed queries (unknown operators, bad operands).
    """
    if not isinstance(query, dict):
        raise QueryError("query must be a mapping")
    for key, condition in query.items():
        if key == "$and":
            if not isinstance(condition, list):
                raise QueryError("$and requires an array of queries")
            if not all(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$or":
            if not isinstance(condition, list):
                raise QueryError("$or requires an array of queries")
            if not any(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$nor":
            if not isinstance(condition, list):
                raise QueryError("$nor requires an array of queries")
            if any(matches(document, sub) for sub in condition):
                return False
            continue
        if key.startswith("$"):
            raise QueryError(f"unknown top-level operator: {key!r}")

        values = resolve_path(document, key)
        if _is_operator_doc(condition):
            if not _match_operator_doc(values, condition, document):
                return False
        else:
            found = False
            for value in values:
                for candidate in _candidates(value):
                    if _values_equal(candidate, condition):
                        found = True
                        break
                if found:
                    break
            if not found:
                return False
    return True


def extract_equality_paths(query: dict[str, Any]) -> dict[str, Any]:
    """Pull out the top-level exact-equality constraints of a query.

    The query planner uses these to probe hash indexes.  Operator documents
    containing only ``$eq`` count as equality.
    """
    equalities: dict[str, Any] = {}
    for key, condition in query.items():
        if key.startswith("$"):
            continue
        if _is_operator_doc(condition):
            if set(condition) == {"$eq"}:
                equalities[key] = condition["$eq"]
        elif not isinstance(condition, (dict, list)):
            equalities[key] = condition
    return equalities
